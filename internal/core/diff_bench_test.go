package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

// compareInputs builds a pair of float32 buffers and stdout streams that
// differ within tolerance but not byte-wise, forcing the slow comparison
// paths, plus byte-identical twins for the fast path.
func compareInputs() (fa, fb []byte, sa, sb string) {
	const n = 4096
	fa = make([]byte, 4*n)
	fb = make([]byte, 4*n)
	var a, b strings.Builder
	for i := 0; i < n; i++ {
		x := float32(i)*1.5 + 0.25
		binary.LittleEndian.PutUint32(fa[4*i:], math.Float32bits(x))
		binary.LittleEndian.PutUint32(fb[4*i:], math.Float32bits(x*(1+1e-6)))
		if i < 256 {
			fmt.Fprintf(&a, "tok%d %.6f ", i, x)
			fmt.Fprintf(&b, "tok%d %.7f ", i, x*(1+1e-6))
		}
	}
	return fa, fb, a.String(), b.String()
}

// TestOutputCompareZeroAlloc pins the allocation contract of the
// classification comparison path: a passing comparison allocates nothing,
// whether it takes the byte-equal fast path or the tolerance path.
func TestOutputCompareZeroAlloc(t *testing.T) {
	fa, fb, sa, sb := compareInputs()
	checks := map[string]func(){
		"FloatBytesClose32/equal":  func() { FloatBytesClose32(fa, fa, 1e-4) },
		"FloatBytesClose32/close":  func() { FloatBytesClose32(fa, fb, 1e-4) },
		"FloatBytesClose64/equal":  func() { FloatBytesClose64(fa, fa, 1e-4) },
		"StdoutTokensClose/equal":  func() { StdoutTokensClose(sa, sa, 1e-4) },
		"StdoutTokensClose/close":  func() { StdoutTokensClose(sa, sb, 1e-4) },
		"StdoutTokensClose/length": func() { StdoutTokensClose("alpha 1.5 beta", "alpha 1.5", 1e-4) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(50, fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", name, allocs)
		}
	}
}

// legacyStdoutClose is the pre-optimization comparison (strings.Fields plus
// per-token ParseFloat), kept here so the benchmark delta the optimization
// claims stays measurable.
func legacyStdoutClose(a, b string, tol float64) bool {
	at, bt := strings.Fields(a), strings.Fields(b)
	if len(at) != len(bt) {
		return false
	}
	for i := range at {
		x, errx := strconv.ParseFloat(at[i], 64)
		y, erry := strconv.ParseFloat(bt[i], 64)
		switch {
		case errx == nil && erry == nil:
			if !FloatClose(x, y, tol) {
				return false
			}
		case errx == nil || erry == nil:
			return false
		default:
			if at[i] != bt[i] {
				return false
			}
		}
	}
	return true
}

func BenchmarkStdoutTokensClose(b *testing.B) {
	_, _, sa, sb := compareInputs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !StdoutTokensClose(sa, sb, 1e-4) {
			b.Fatal("streams should compare close")
		}
	}
}

func BenchmarkStdoutCloseLegacy(b *testing.B) {
	_, _, sa, sb := compareInputs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !legacyStdoutClose(sa, sb, 1e-4) {
			b.Fatal("streams should compare close")
		}
	}
}

func BenchmarkFloatBytesClose32(b *testing.B) {
	fa, fb, _, _ := compareInputs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !FloatBytesClose32(fa, fb, 1e-4) {
			b.Fatal("buffers should compare close")
		}
	}
}
