// Package core implements NVBitFI itself: the profiler that builds
// dynamic instruction profiles (exact and approximate), injection-site
// selection over a profile, the transient-fault injector (Table II of the
// paper), the permanent-fault injector (Table III), and the paper's
// future-work extensions (intermittent faults, multi-opcode permanent
// faults, fault dictionaries, thread targeting).
package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sass"
)

// ProfileMode selects exact or approximate profiling.
type ProfileMode uint8

// Profiling modes (Section III-A of the paper).
const (
	// Exact counts every dynamic instruction of every dynamic kernel.
	Exact ProfileMode = iota + 1
	// Approximate counts only the first dynamic instance of each static
	// kernel and assumes subsequent instances repeat the same counts.
	Approximate
)

func (m ProfileMode) String() string {
	switch m {
	case Exact:
		return "exact"
	case Approximate:
		return "approximate"
	default:
		return fmt.Sprintf("ProfileMode(%d)", uint8(m))
	}
}

// KernelRecord is one profile line: the per-opcode thread-level executed
// instruction counts of one dynamic kernel. Instructions whose guard
// predicate suppressed them are not counted, per the paper.
type KernelRecord struct {
	Kernel      string
	LaunchIndex int
	OpCounts    map[sass.Op]uint64

	// SiteOps and SiteCounts, when present, break the record down per
	// static instruction: SiteOps[i] is the opcode of instruction i of the
	// kernel and SiteCounts[i] its thread-level dynamic execution count.
	// They let injection-site selection resolve a dynamic index to a static
	// instruction without replaying the program, which is what campaign
	// pruning needs. Older profiles lack them.
	SiteOps    []sass.Op
	SiteCounts []uint64

	// Extrapolated marks approximate-mode records copied from the first
	// dynamic instance of the static kernel rather than measured.
	Extrapolated bool
}

// HasSites reports whether the record carries the per-static-instruction
// breakdown.
func (r *KernelRecord) HasSites() bool { return len(r.SiteCounts) > 0 }

// Total returns the record's thread-level instruction count over a group.
func (r *KernelRecord) Total(g sass.Group) uint64 {
	var n uint64
	for op, c := range r.OpCounts {
		if sass.GroupContains(g, op) {
			n += c
		}
	}
	return n
}

// Profile is a program's dynamic instruction profile: one record per
// dynamic kernel, in launch order. It defines the uniform distribution of
// dynamic faults that injection sites are sampled from.
type Profile struct {
	Program string
	Mode    ProfileMode
	Records []KernelRecord
}

// TotalInstrs returns the profile-wide thread-level instruction count for a
// group — the paper's N for fault selection.
func (p *Profile) TotalInstrs(g sass.Group) uint64 {
	var n uint64
	for i := range p.Records {
		n += p.Records[i].Total(g)
	}
	return n
}

// ExecutedOpcodes returns every opcode with a nonzero dynamic count,
// ordered by Op value. A permanent-fault campaign iterates exactly this
// set, skipping the family's unused opcodes (Section IV-C).
func (p *Profile) ExecutedOpcodes() []sass.Op {
	seen := make(map[sass.Op]uint64)
	for i := range p.Records {
		for op, c := range p.Records[i].OpCounts {
			seen[op] += c
		}
	}
	ops := make([]sass.Op, 0, len(seen))
	for op, c := range seen {
		if c > 0 {
			ops = append(ops, op)
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	return ops
}

// OpcodeTotals returns profile-wide dynamic counts per opcode, used to
// weight permanent-fault outcomes by activation likelihood (Figure 3).
func (p *Profile) OpcodeTotals() map[sass.Op]uint64 {
	totals := make(map[sass.Op]uint64)
	for i := range p.Records {
		for op, c := range p.Records[i].OpCounts {
			totals[op] += c
		}
	}
	return totals
}

// StaticKernels returns the distinct kernel names, in first-launch order.
func (p *Profile) StaticKernels() []string {
	var names []string
	seen := make(map[string]bool)
	for i := range p.Records {
		if !seen[p.Records[i].Kernel] {
			seen[p.Records[i].Kernel] = true
			names = append(names, p.Records[i].Kernel)
		}
	}
	return names
}

// DynamicKernels returns the number of dynamic kernel launches profiled.
func (p *Profile) DynamicKernels() int { return len(p.Records) }

// WriteTo serializes the profile in the one-line-per-dynamic-kernel text
// format of the paper's profiler output.
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "# program: %s\n# mode: %s\n", p.Program, p.Mode)); err != nil {
		return n, err
	}
	for i := range p.Records {
		r := &p.Records[i]
		ops := make([]sass.Op, 0, len(r.OpCounts))
		for op := range r.OpCounts {
			ops = append(ops, op)
		}
		sort.Slice(ops, func(a, b int) bool { return ops[a] < ops[b] })
		if err := count(fmt.Fprintf(bw, "%s; %d;", r.Kernel, r.LaunchIndex)); err != nil {
			return n, err
		}
		for _, op := range ops {
			if err := count(fmt.Fprintf(bw, " %s=%d", op, r.OpCounts[op])); err != nil {
				return n, err
			}
		}
		if err := count(fmt.Fprintln(bw)); err != nil {
			return n, err
		}
		if r.HasSites() {
			// The per-site breakdown rides in a comment line so that older
			// parsers (which skip comments) still read the profile.
			if err := count(fmt.Fprintf(bw, "# sites:")); err != nil {
				return n, err
			}
			for i, c := range r.SiteCounts {
				if err := count(fmt.Fprintf(bw, " %d:%s=%d", i, r.SiteOps[i], c)); err != nil {
					return n, err
				}
			}
			if err := count(fmt.Fprintln(bw)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// String renders the profile in its text format.
func (p *Profile) String() string {
	var sb strings.Builder
	if _, err := p.WriteTo(&sb); err != nil {
		return "<error: " + err.Error() + ">"
	}
	return sb.String()
}

// ParseProfile reads the text format produced by WriteTo.
func ParseProfile(r io.Reader) (*Profile, error) {
	p := &Profile{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# program:"):
			p.Program = strings.TrimSpace(strings.TrimPrefix(line, "# program:"))
			continue
		case strings.HasPrefix(line, "# mode:"):
			switch strings.TrimSpace(strings.TrimPrefix(line, "# mode:")) {
			case "exact":
				p.Mode = Exact
			case "approximate":
				p.Mode = Approximate
			default:
				return nil, fmt.Errorf("core: profile line %d: unknown mode", lineNo)
			}
			continue
		case strings.HasPrefix(line, "# sites:"):
			if len(p.Records) == 0 {
				return nil, fmt.Errorf("core: profile line %d: sites before any record", lineNo)
			}
			rec := &p.Records[len(p.Records)-1]
			for i, tok := range strings.Fields(strings.TrimPrefix(line, "# sites:")) {
				colon := strings.IndexByte(tok, ':')
				eq := strings.IndexByte(tok, '=')
				if colon < 0 || eq < colon {
					return nil, fmt.Errorf("core: profile line %d: bad site token %q", lineNo, tok)
				}
				idx, err := strconv.Atoi(tok[:colon])
				if err != nil || idx != i {
					return nil, fmt.Errorf("core: profile line %d: bad site index in %q", lineNo, tok)
				}
				op, ok := sass.LookupOp(tok[colon+1 : eq])
				if !ok {
					return nil, fmt.Errorf("core: profile line %d: unknown opcode %q", lineNo, tok[colon+1:eq])
				}
				c, err := strconv.ParseUint(tok[eq+1:], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("core: profile line %d: bad site count %q: %v", lineNo, tok, err)
				}
				rec.SiteOps = append(rec.SiteOps, op)
				rec.SiteCounts = append(rec.SiteCounts, c)
			}
			continue
		case strings.HasPrefix(line, "#"):
			continue
		}
		parts := strings.SplitN(line, ";", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("core: profile line %d: want 'kernel; launch; counts'", lineNo)
		}
		launch, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("core: profile line %d: bad launch index: %v", lineNo, err)
		}
		rec := KernelRecord{
			Kernel:      strings.TrimSpace(parts[0]),
			LaunchIndex: launch,
			OpCounts:    make(map[sass.Op]uint64),
		}
		for _, tok := range strings.Fields(parts[2]) {
			eq := strings.IndexByte(tok, '=')
			if eq < 0 {
				return nil, fmt.Errorf("core: profile line %d: bad count token %q", lineNo, tok)
			}
			op, ok := sass.LookupOp(tok[:eq])
			if !ok {
				return nil, fmt.Errorf("core: profile line %d: unknown opcode %q", lineNo, tok[:eq])
			}
			c, err := strconv.ParseUint(tok[eq+1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("core: profile line %d: bad count %q: %v", lineNo, tok, err)
			}
			rec.OpCounts[op] = c
		}
		p.Records = append(p.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: reading profile: %w", err)
	}
	return p, nil
}
