package core_test

import (
	"testing"

	"repro/internal/core"
)

// TestRandomGateAllocationFree: the gate decides once per dynamic instance of
// the faulty opcode, so it must not allocate — a per-activation rand.Source
// would dominate a permanent campaign's hot loop.
func TestRandomGateAllocationFree(t *testing.T) {
	g := core.RandomGate{P: 0.5, Seed: 42}
	var i uint64
	allocs := testing.AllocsPerRun(1000, func() {
		g.Active(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("RandomGate.Active allocates %.1f objects per call, want 0", allocs)
	}
}

// TestRandomGateSeedIndependence: different seeds decorrelate the decision
// streams; the same seed reproduces them exactly.
func TestRandomGateSeedIndependence(t *testing.T) {
	a := core.RandomGate{P: 0.5, Seed: 1}
	b := core.RandomGate{P: 0.5, Seed: 2}
	same, agree := 0, 0
	for i := uint64(0); i < 1000; i++ {
		if a.Active(i) == (core.RandomGate{P: 0.5, Seed: 1}).Active(i) {
			same++
		}
		if a.Active(i) == b.Active(i) {
			agree++
		}
	}
	if same != 1000 {
		t.Fatalf("same-seed gates agreed on %d/1000 decisions, want 1000", same)
	}
	// Two independent fair streams agree about half the time; 1000 draws
	// keep the band wide enough to never flake.
	if agree < 350 || agree > 650 {
		t.Fatalf("different-seed gates agreed on %d/1000 decisions", agree)
	}
}

// TestRandomGateRate: the activation rate tracks P across the range.
func TestRandomGateRate(t *testing.T) {
	for _, p := range []float64{0.1, 0.25, 0.75, 0.9} {
		g := core.RandomGate{P: p, Seed: 7}
		hits := 0
		const n = 10000
		for i := uint64(0); i < n; i++ {
			if g.Active(i) {
				hits++
			}
		}
		got := float64(hits) / n
		if got < p-0.03 || got > p+0.03 {
			t.Errorf("P=%v gate fired at rate %.3f", p, got)
		}
	}
}

// TestBurstGatePattern: the burst gate fires exactly BurstLen consecutive
// activations out of every Period, shifted by Offset.
func TestBurstGatePattern(t *testing.T) {
	g := core.BurstGate{Period: 8, BurstLen: 3, Offset: 2}
	for i := uint64(0); i < 64; i++ {
		want := (i+2)%8 < 3
		if got := g.Active(i); got != want {
			t.Fatalf("burst gate at activation %d = %v, want %v", i, got, want)
		}
	}
	// A zero period means always-on (the ungated degenerate case).
	always := core.BurstGate{Period: 0}
	for i := uint64(0); i < 16; i++ {
		if !always.Active(i) {
			t.Fatal("zero-period burst gate went inactive")
		}
	}
}
