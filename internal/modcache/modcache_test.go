package modcache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/sass"
	"repro/internal/sass/encoding"
)

const testSrc = `
.kernel probe
.param n
    S2R R0, SR_TID.X
    IADD R1, R0, 0x1
    SHL R2, R1, 0x2
    EXIT
`

// TestAssembleMatchesDirect: the cached path must be bit- and
// structure-identical to calling sass.Assemble + EncodeProgram directly —
// the exact sequence cuda.LoadModule ran before the cache existed.
func TestAssembleMatchesDirect(t *testing.T) {
	c := New()
	prog, bin, hit, err := c.Assemble(sass.FamilyVolta, "probe", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first Assemble reported a cache hit")
	}

	directProg, err := sass.Assemble("probe", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := encoding.NewCodec(sass.FamilyVolta)
	if err != nil {
		t.Fatal(err)
	}
	directBin, err := codec.EncodeProgram(directProg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prog, directProg) {
		t.Error("cached program differs from direct assembly")
	}
	if !reflect.DeepEqual(bin, directBin) {
		t.Error("cached binary differs from direct encoding")
	}

	// The second call is a hit returning the same shared objects.
	prog2, bin2, hit, err := c.Assemble(sass.FamilyVolta, "probe", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second Assemble missed the cache")
	}
	if prog2 != prog || &bin2[0] != &bin[0] {
		t.Error("cache hit returned different objects")
	}
}

// TestDecodeMatchesDirect: cached decode equals a direct DecodeProgram, and
// repeat decodes of the same bytes share one program.
func TestDecodeMatchesDirect(t *testing.T) {
	c := New()
	_, bin, _, err := c.Assemble(sass.FamilyVolta, "probe", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, hit, err := c.Decode(sass.FamilyVolta, bin)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first Decode reported a cache hit")
	}
	codec, err := encoding.NewCodec(sass.FamilyVolta)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := codec.DecodeProgram(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prog, direct) {
		t.Error("cached decode differs from direct decode")
	}
	prog2, hit, err := c.Decode(sass.FamilyVolta, bin)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || prog2 != prog {
		t.Errorf("repeat decode: hit=%v, shared=%v", hit, prog2 == prog)
	}
}

// TestCodecShared: one codec per family, shared by every caller.
func TestCodecShared(t *testing.T) {
	c := New()
	a, err := c.Codec(sass.FamilyVolta)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Codec(sass.FamilyVolta)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same family produced two codecs")
	}
	st := c.Stats()
	if st.CodecBuilds != 1 || st.CodecHits != 1 {
		t.Errorf("codec stats = %+v, want 1 build / 1 hit", st)
	}
}

// TestErrorsCached: assembly is deterministic, so a bad source fails
// identically — and from the cache — on every retry.
func TestErrorsCached(t *testing.T) {
	c := New()
	_, _, _, err1 := c.Assemble(sass.FamilyVolta, "bad", ".kernel k\n NOTANOP R0\n")
	if err1 == nil {
		t.Fatal("bad source assembled")
	}
	_, _, hit, err2 := c.Assemble(sass.FamilyVolta, "bad", ".kernel k\n NOTANOP R0\n")
	if !hit {
		t.Error("retry of failing source missed the cache")
	}
	if err2 == nil || err2.Error() != err1.Error() {
		t.Errorf("cached error %v, first error %v", err2, err1)
	}
}

// TestConcurrentAssemble: N goroutines racing on the same key must produce
// exactly one build and share one program; distinct keys stay distinct.
// Run under -race this also proves the cache's synchronization.
func TestConcurrentAssemble(t *testing.T) {
	c := New()
	const goroutines = 16
	progs := make([]*sass.Program, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, _, err := c.Assemble(sass.FamilyVolta, "probe", testSrc)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("goroutine %d got a different program", i)
		}
	}
	st := c.Stats()
	if st.AssembleBuilds != 1 {
		t.Errorf("%d builds for one key, want 1", st.AssembleBuilds)
	}
	if st.AssembleHits != goroutines-1 {
		t.Errorf("%d hits, want %d", st.AssembleHits, goroutines-1)
	}

	// A different source is a different key.
	other := testSrc + "// distinct\n"
	p, _, hit, err := c.Assemble(sass.FamilyVolta, "probe", other)
	if err != nil {
		t.Fatal(err)
	}
	if hit || p == progs[0] {
		t.Error("distinct source collided with the cached entry")
	}
}

// TestReset: after Reset the next load rebuilds, and previously returned
// programs remain usable.
func TestReset(t *testing.T) {
	c := New()
	p1, _, _, err := c.Assemble(sass.FamilyVolta, "probe", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("stats after Reset = %+v", st)
	}
	p2, _, hit, err := c.Assemble(sass.FamilyVolta, "probe", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("post-Reset load reported a hit")
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Error("rebuild differs from the pre-Reset program")
	}
	if fmt.Sprint(p1.Kernels[0].Instrs[0]) == "" {
		t.Error("pre-Reset program no longer readable")
	}
}
