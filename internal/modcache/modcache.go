// Package modcache is the cross-context module cache: the amortization
// layer that lets an N-experiment campaign pay the fixed
// assemble/encode/decode cost once instead of N times.
//
// A fault-injection campaign creates a fresh cuda.Context per experiment
// (isolation is the point), but every experiment loads the same modules:
// without a cache each run repeats sass.Assemble + Codec.EncodeProgram,
// re-decodes every module binary in the NVBit attach path, and builds two
// fresh per-family Codecs. All of those are pure functions of their inputs,
// so their results are memoized here, content-addressed by
// (family, SHA-256 of the input):
//
//   - Codec(family) pools the per-family encoding.Codec, which is immutable
//     after construction.
//   - Assemble(family, name, source) memoizes sass.Assemble followed by
//     EncodeProgram.
//   - Decode(family, binary) memoizes Codec.DecodeProgram.
//
// The cached *sass.Program values (and the encoded binaries) are shared,
// read-only state: callers on any context or goroutine receive the same
// pointers and must not mutate them. This matches the existing engine
// contract — instrumentation and fault injection rewrite Clone()d kernels,
// never the decoded originals — and is guarded by race-mode differential
// tests in internal/campaign.
//
// Concurrent callers of the same key block on a per-entry sync.Once, so a
// parallel campaign's first wave builds each module exactly once.
package modcache

import (
	"crypto/sha256"
	"sync"

	"repro/internal/sass"
	"repro/internal/sass/encoding"
)

// Stats reports cache effectiveness: hits are calls served from a
// previously created entry, builds are calls that created one. A call that
// arrives while another goroutine is still building the same entry counts
// as a hit (it reuses that build).
type Stats struct {
	CodecHits, CodecBuilds       uint64
	AssembleHits, AssembleBuilds uint64
	DecodeHits, DecodeBuilds     uint64
	PlanHits, PlanBuilds         uint64
}

// Cache memoizes codec construction, assembly+encoding, and decoding.
// The zero value is not usable; call New.
type Cache struct {
	mu     sync.Mutex
	codecs map[sass.Family]*codecEntry
	asm    map[asmKey]*asmEntry
	dec    map[decKey]*decEntry
	plans  map[PlanKey]*planEntry
	stats  Stats
}

// Shared is the process-wide cache used by the cuda and nvbit layers.
var Shared = New()

// New creates an empty cache.
func New() *Cache {
	return &Cache{
		codecs: make(map[sass.Family]*codecEntry),
		asm:    make(map[asmKey]*asmEntry),
		dec:    make(map[decKey]*decEntry),
		plans:  make(map[PlanKey]*planEntry),
	}
}

type codecEntry struct {
	once  sync.Once
	codec *encoding.Codec
	err   error
}

type asmKey struct {
	family sass.Family
	name   string
	src    [sha256.Size]byte
}

type asmEntry struct {
	once sync.Once
	prog *sass.Program
	bin  []byte
	err  error
}

type decKey struct {
	family sass.Family
	bin    [sha256.Size]byte
}

type decEntry struct {
	once sync.Once
	prog *sass.Program
	err  error
}

// Codec returns the shared per-family codec, building it on first use.
// Codecs are immutable after construction and safe for concurrent use.
func (c *Cache) Codec(f sass.Family) (*encoding.Codec, error) {
	c.mu.Lock()
	e, ok := c.codecs[f]
	if !ok {
		e = &codecEntry{}
		c.codecs[f] = e
		c.stats.CodecBuilds++
	} else {
		c.stats.CodecHits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.codec, e.err = encoding.NewCodec(f) })
	return e.codec, e.err
}

// Assemble memoizes sass.Assemble + Codec.EncodeProgram for the given
// family and source. The returned program and binary are shared read-only
// state; hit reports whether the entry already existed. Errors are cached
// too: assembly is deterministic, so a failing source fails identically on
// every retry.
func (c *Cache) Assemble(f sass.Family, name, src string) (prog *sass.Program, bin []byte, hit bool, err error) {
	key := asmKey{family: f, name: name, src: sha256.Sum256([]byte(src))}
	c.mu.Lock()
	e, ok := c.asm[key]
	if !ok {
		e = &asmEntry{}
		c.asm[key] = e
		c.stats.AssembleBuilds++
	} else {
		c.stats.AssembleHits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		p, err := sass.Assemble(name, src)
		if err != nil {
			e.err = err
			return
		}
		codec, err := c.Codec(f)
		if err != nil {
			e.err = err
			return
		}
		b, err := codec.EncodeProgram(p)
		if err != nil {
			e.err = err
			return
		}
		e.prog, e.bin = p, b
	})
	return e.prog, e.bin, ok, e.err
}

// Decode memoizes Codec.DecodeProgram for the given family and machine
// code. The returned program is shared read-only state; hit reports whether
// the entry already existed.
func (c *Cache) Decode(f sass.Family, bin []byte) (prog *sass.Program, hit bool, err error) {
	key := decKey{family: f, bin: sha256.Sum256(bin)}
	c.mu.Lock()
	e, ok := c.dec[key]
	if !ok {
		e = &decEntry{}
		c.dec[key] = e
		c.stats.DecodeBuilds++
	} else {
		c.stats.DecodeHits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		codec, err := c.Codec(f)
		if err != nil {
			e.err = err
			return
		}
		e.prog, e.err = codec.DecodeProgram(bin)
	})
	return e.prog, ok, e.err
}

// PlanKey addresses one derived execution artifact: Engine names and
// versions the translation scheme (so an engine change invalidates every
// cached plan without flushing the module entries) and Hash is the content
// hash of the kernel the plan was compiled from.
type PlanKey struct {
	Engine string
	Hash   [sha256.Size]byte
}

type planEntry struct {
	once sync.Once
	v    any
	err  error
}

// Plan memoizes a derived per-kernel execution artifact — the gpu package
// caches its translated block plans here, content-addressed like the module
// entries, so a campaign's N contexts translate each kernel exactly once.
// The returned value is shared read-only state; hit reports whether the
// entry already existed. Errors are cached: translation is a pure function
// of the kernel, so a failing build fails identically on every retry.
func (c *Cache) Plan(key PlanKey, build func() (any, error)) (v any, hit bool, err error) {
	c.mu.Lock()
	e, ok := c.plans[key]
	if !ok {
		e = &planEntry{}
		c.plans[key] = e
		c.stats.PlanBuilds++
	} else {
		c.stats.PlanHits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.v, e.err = build() })
	return e.v, ok, e.err
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Reset drops every entry and zeroes the counters. Outstanding programs
// remain valid (they are never mutated); Reset only forgets them, so
// subsequent loads rebuild. Tests use this to measure cold paths.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.codecs = make(map[sass.Family]*codecEntry)
	c.asm = make(map[asmKey]*asmEntry)
	c.dec = make(map[decKey]*decEntry)
	c.plans = make(map[PlanKey]*planEntry)
	c.stats = Stats{}
}
