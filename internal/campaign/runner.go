package campaign

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/faultmodel"
	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
	"repro/internal/sassan"
	"repro/internal/stats"
)

// Runner executes workloads under injection tools, one fresh device and
// context per run, replicating the paper's campaign scripts (Figure 1).
type Runner struct {
	// Family is the simulated architecture family (default Volta).
	Family sass.Family
	// NumSMs is the device's SM count (default 8).
	NumSMs int
	// BudgetFactor multiplies the golden run's warp-instruction count to
	// form the hang-detection budget (default 10).
	BudgetFactor uint64
	// Workers is the per-device block-parallelism degree plumbed into
	// gpu.Device.Workers: uninstrumented launches (golden runs, non-target
	// kernels) dispatch independent thread blocks across this many
	// goroutines. 0 or 1 keeps the sequential reference schedule.
	// Instrumented launches always run sequentially — callback order is
	// injection semantics — so campaign throughput usually comes from
	// experiment-level parallelism (TransientCampaignConfig.Parallel)
	// instead.
	Workers int
	// GoldenBudget is the per-launch warp-instruction cap for golden and
	// profiling runs, which execute before any workload-derived budget can
	// be calibrated. Default DefaultGoldenBudget: a buggy or
	// non-terminating workload then traps with TrapInstrLimit instead of
	// hanging the campaign.
	GoldenBudget uint64
	// InterpretTrampolines and DisableDisarm are plumbed to the matching
	// gpu.Device knobs on every device this runner builds. Both select
	// legacy slow paths that are observably identical to the defaults;
	// they exist for the differential tests that prove it.
	InterpretTrampolines bool
	DisableDisarm        bool
	// VerifyModules makes every context this runner builds verify modules
	// at load time (cuda.VerifyEnforce): a module whose static verification
	// produces errors fails to load, so a broken workload is rejected
	// before any experiment wastes a run on it.
	VerifyModules bool
	// NoXlate is plumbed to gpu.Device.NoXlate on every device this runner
	// builds, forcing launches through the legacy interpreter instead of the
	// block-level translation engine. The two paths are observably identical
	// (the differential tests prove it); this is the escape hatch.
	NoXlate bool
	// LegacySched is plumbed to gpu.Device.LegacySched on every device this
	// runner builds, pinning warps to the legacy per-issue min-PC scan
	// instead of the warp-split scheduler. Like NoXlate it changes nothing
	// observable — it exists as the oracle side of the scheduler
	// differential tests.
	LegacySched bool
}

// DefaultGoldenBudget is the Runner.GoldenBudget default: large enough
// that no real workload in the suite comes near it (the biggest golden
// runs execute a few million warp instructions), small enough that an
// accidental infinite loop traps in seconds rather than hanging for the
// 2^32 instructions of the device's own last-resort budget.
const DefaultGoldenBudget = 1 << 28

// MinBudgetCalibration floors the golden warp-instruction count when
// calibrating per-experiment hang budgets: a near-empty workload (a golden
// run of a handful of instructions) would otherwise get a budget so tight
// that legitimate fault behaviour — a corrupted loop bound iterating a few
// hundred extra times — is misclassified as a hang instead of running to
// its real outcome.
const MinBudgetCalibration = 1000

// experimentBudget is the per-launch warp-instruction cap applied to every
// injection experiment: BudgetFactor times the golden run's count, floored
// by MinBudgetCalibration. Must be called on a defaults-applied Runner.
func (r Runner) experimentBudget(golden *GoldenResult) uint64 {
	return r.BudgetFactor * max(golden.Stats.WarpInstrs, MinBudgetCalibration)
}

// applyDefaults fills zero fields.
func (r Runner) applyDefaults() Runner {
	if r.Family == 0 {
		r.Family = sass.FamilyVolta
	}
	if r.NumSMs == 0 {
		r.NumSMs = 8
	}
	if r.BudgetFactor == 0 {
		r.BudgetFactor = 10
	}
	if r.GoldenBudget == 0 {
		r.GoldenBudget = DefaultGoldenBudget
	}
	return r
}

// newContext builds a fresh device and context.
func (r Runner) newContext() (*cuda.Context, error) {
	r = r.applyDefaults()
	dev, err := gpu.NewDevice(r.Family, r.NumSMs)
	if err != nil {
		return nil, err
	}
	dev.Workers = r.Workers
	dev.InterpretTrampolines = r.InterpretTrampolines
	dev.DisableDisarm = r.DisableDisarm
	dev.NoXlate = r.NoXlate
	dev.LegacySched = r.LegacySched
	ctx, err := cuda.NewContext(dev)
	if err != nil {
		return nil, err
	}
	if r.VerifyModules {
		ctx.SetVerifyMode(cuda.VerifyEnforce)
	}
	return ctx, nil
}

// LintWorkload runs the workload once on a context in VerifyWarn mode and
// returns every static-verification diagnostic its modules produced — the
// campaign-level entry point behind `sasslint -workloads`. The run itself
// must succeed; lint findings are returned, not treated as failures.
func (r Runner) LintWorkload(w Workload) ([]sassan.Diagnostic, error) {
	r = r.applyDefaults()
	ctx, err := r.newContext()
	if err != nil {
		return nil, err
	}
	ctx.SetVerifyMode(cuda.VerifyWarn)
	ctx.SetDefaultBudget(r.GoldenBudget)
	out, err := w.Run(ctx)
	if err != nil {
		return ctx.VerifyDiagnostics(), fmt.Errorf("campaign: lint run of %s failed: %w", w.Name(), err)
	}
	if out.ExitCode != 0 {
		return ctx.VerifyDiagnostics(), fmt.Errorf("campaign: lint run of %s exited with %d", w.Name(), out.ExitCode)
	}
	return ctx.VerifyDiagnostics(), nil
}

// GoldenResult is a reference run: the fault-free output plus the execution
// counts that calibrate hang budgets and overhead measurements.
type GoldenResult struct {
	Output   *Output
	Stats    gpu.LaunchStats
	Duration time.Duration

	// Kernels maps kernel name to the decoded kernel of every module the
	// golden run loaded — the static view campaign pruning analyzes. A name
	// defined by more than one module is dropped: injection parameters
	// address kernels by name, so an ambiguous name cannot be reasoned
	// about statically.
	Kernels map[string]*sass.Kernel
	// BaselineClass is the classification of the fault-free run against its
	// own output. A pruned experiment reuses it verbatim: a provably-masked
	// injection leaves the program on exactly the golden path, anomalies
	// (device-log events, unconsumed errors) included.
	BaselineClass Classification
}

// Golden runs the workload with no tool attached and records the reference
// output.
func (r Runner) Golden(w Workload) (*GoldenResult, error) {
	r = r.applyDefaults()
	ctx, err := r.newContext()
	if err != nil {
		return nil, err
	}
	ctx.SetDefaultBudget(r.GoldenBudget)
	start := time.Now()
	out, err := w.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("campaign: golden run of %s failed: %w", w.Name(), err)
	}
	if ctx.LastError() != cuda.Success {
		return nil, fmt.Errorf("campaign: golden run of %s hit %v", w.Name(), ctx.LastError())
	}
	if out.ExitCode != 0 {
		return nil, fmt.Errorf("campaign: golden run of %s exited with %d", w.Name(), out.ExitCode)
	}
	kernels := make(map[string]*sass.Kernel)
	dup := make(map[string]bool)
	for _, m := range ctx.Modules() {
		for _, k := range m.Kernels() {
			if _, seen := kernels[k.Name]; seen {
				dup[k.Name] = true
			}
			kernels[k.Name] = k
		}
	}
	for name := range dup {
		delete(kernels, name)
	}
	return &GoldenResult{
		Output:        out,
		Stats:         ctx.AccumulatedStats(),
		Duration:      time.Since(start),
		Kernels:       kernels,
		BaselineClass: Classify(w, out, out, nil, ctx),
	}, nil
}

// Profile runs the workload under the profiler and returns the resulting
// instruction profile together with the profiling run's duration (the
// profiling-overhead axis of Figure 4).
func (r Runner) Profile(w Workload, mode core.ProfileMode) (*core.Profile, time.Duration, error) {
	r = r.applyDefaults()
	ctx, err := r.newContext()
	if err != nil {
		return nil, 0, err
	}
	ctx.SetDefaultBudget(r.GoldenBudget)
	prof, err := core.NewProfiler(w.Name(), mode)
	if err != nil {
		return nil, 0, err
	}
	att, err := nvbit.Attach(ctx, prof)
	if err != nil {
		return nil, 0, err
	}
	defer att.Detach()
	start := time.Now()
	out, err := w.Run(ctx)
	d := time.Since(start)
	if err != nil {
		return nil, d, fmt.Errorf("campaign: profiling run of %s failed: %w", w.Name(), err)
	}
	if out.ExitCode != 0 {
		return nil, d, fmt.Errorf("campaign: profiling run of %s exited with %d", w.Name(), out.ExitCode)
	}
	return prof.Finish(), d, nil
}

// RunResult is one injection experiment's result.
type RunResult struct {
	Class     Classification
	Injection core.InjectionRecord // transient runs only
	// Activations counts permanent-fault site exercises (permanent runs).
	Activations uint64
	Duration    time.Duration
	Stats       gpu.LaunchStats
	// Pruned marks an experiment that never executed: static liveness
	// analysis proved the injection target dead, so the classification was
	// synthesized (Masked, golden-run anomaly state) instead of measured.
	Pruned bool
	// Restored marks a checkpointed experiment that started from a
	// mid-trajectory device snapshot instead of replaying its golden prefix.
	Restored bool
	// EarlyExit marks a checkpointed experiment whose post-fault state
	// digest re-converged with the golden trajectory at a checkpoint
	// boundary, so its tail was settled from the recording.
	EarlyExit bool
	// ClassID names the fault-equivalence class this run belongs to when
	// class-representative sampling is on (empty otherwise). IDs are
	// kernel-local content hashes; qualify with Injection.Kernel to compare
	// across kernels.
	ClassID string
	// ClassAnswered marks an experiment that never executed: its class
	// representative ran in its place and this result inherits that
	// classification.
	ClassAnswered bool
	// Stratum is the sampling stratum this run's injection site falls in
	// when the campaign runs with adaptive stratified sampling
	// ("kernel:classID", or "~" for unclassable sites). Empty otherwise.
	Stratum string
}

// RunTransient performs one transient-fault experiment: fresh context,
// injector attached, workload run, outcome classified against golden. A
// cancelled ctx aborts the experiment promptly — in-flight launches trap
// with gpu.TrapCancelled instead of draining the hang budget — and the
// context's error is returned in place of a classification.
func (r Runner) RunTransient(ctx context.Context, w Workload, golden *GoldenResult, p core.TransientParams) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cctx, err := r.newContext()
	if err != nil {
		return nil, err
	}
	cctx.SetCancel(ctx)
	r = r.applyDefaults()
	cctx.SetDefaultBudget(r.experimentBudget(golden))
	inj, err := core.NewTransientInjector(p)
	if err != nil {
		return nil, err
	}
	att, err := nvbit.Attach(cctx, inj)
	if err != nil {
		return nil, err
	}
	defer att.Detach()

	start := time.Now()
	out, runErr := w.Run(cctx)
	d := time.Since(start)
	if err := ctx.Err(); err != nil {
		// The run was cut short by cancellation; whatever output it produced
		// does not describe the fault's behaviour, so classify nothing.
		return nil, err
	}
	if out == nil {
		out = NewOutput()
	}
	res := &RunResult{
		Class:     Classify(w, golden.Output, out, runErr, cctx),
		Injection: inj.Record(),
		Duration:  d,
		Stats:     cctx.AccumulatedStats(),
	}
	// The experiment's context is dead once classified; hand its memory
	// pages back so the next experiment reuses them instead of allocating.
	cctx.Device().Recycle()
	return res, nil
}

// ModelEnv derives the faultmodel.Env a campaign's experiments share: the
// runner's device shape plus the golden kernel view and the profile's opcode
// activity. Pure derivation — no workload runs.
func ModelEnv(r Runner, golden *GoldenResult, profile *core.Profile) faultmodel.Env {
	r = r.applyDefaults()
	env := faultmodel.Env{Family: r.Family, NumSMs: r.NumSMs, Kernels: golden.Kernels}
	if profile != nil {
		env.OpcodeTotals = profile.OpcodeTotals()
	}
	return env
}

// RunModel performs one experiment under an arbitrary fault model: fresh
// context, the model's injector attached, workload run, outcome classified
// against golden — RunTransient generalized over the injector factory.
// Cancellation behaves as in RunTransient.
func (r Runner) RunModel(ctx context.Context, w Workload, golden *GoldenResult,
	m faultmodel.Model, p core.TransientParams, param string, env faultmodel.Env) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cctx, err := r.newContext()
	if err != nil {
		return nil, err
	}
	cctx.SetCancel(ctx)
	r = r.applyDefaults()
	cctx.SetDefaultBudget(r.experimentBudget(golden))
	inj, err := m.NewInjector(p, param, env)
	if err != nil {
		return nil, err
	}
	att, err := nvbit.Attach(cctx, inj)
	if err != nil {
		return nil, err
	}
	defer att.Detach()

	start := time.Now()
	out, runErr := w.Run(cctx)
	d := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if out == nil {
		out = NewOutput()
	}
	res := &RunResult{
		Class:       Classify(w, golden.Output, out, runErr, cctx),
		Injection:   inj.Record(),
		Activations: inj.Activations(),
		Duration:    d,
		Stats:       cctx.AccumulatedStats(),
	}
	cctx.Device().Recycle()
	return res, nil
}

// RunPermanent performs one permanent-fault experiment. gate, when non-nil,
// makes the fault intermittent; dict, when non-nil, overrides corruption
// per opcode. Cancellation behaves as in RunTransient.
func (r Runner) RunPermanent(ctx context.Context, w Workload, golden *GoldenResult, p core.PermanentParams,
	gate core.ActivationGate, dict core.FaultDictionary) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r = r.applyDefaults()
	cctx, err := r.newContext()
	if err != nil {
		return nil, err
	}
	cctx.SetCancel(ctx)
	cctx.SetDefaultBudget(r.experimentBudget(golden))
	inj, err := core.NewPermanentInjector(p, r.Family, r.NumSMs)
	if err != nil {
		return nil, err
	}
	if gate != nil {
		inj.SetGate(gate)
	}
	if dict != nil {
		inj.SetDictionary(dict)
	}
	att, err := nvbit.Attach(cctx, inj)
	if err != nil {
		return nil, err
	}
	defer att.Detach()

	start := time.Now()
	out, runErr := w.Run(cctx)
	d := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if out == nil {
		out = NewOutput()
	}
	res := &RunResult{
		Class:       Classify(w, golden.Output, out, runErr, cctx),
		Activations: inj.Activations(),
		Duration:    d,
		Stats:       cctx.AccumulatedStats(),
	}
	cctx.Device().Recycle()
	return res, nil
}

// TransientCampaignConfig parameterizes RunTransientCampaign.
type TransientCampaignConfig struct {
	// Injections is the number of faults to inject (paper: 100 per program
	// for the example campaign; 1000 for tighter confidence).
	Injections int
	// Group is the arch state id to sample from (default G_GPPR: any
	// instruction with a destination).
	Group sass.Group
	// BitFlip is the corruption model (default FLIP_SINGLE_BIT).
	BitFlip core.BitFlipModel
	// Seed makes site selection reproducible.
	Seed int64
	// Parallel bounds concurrent experiments. Zero defaults to
	// runtime.NumCPU(), or 1 when TimingFidelity is set. Outcomes are
	// independent of Parallel: every experiment gets a fresh device and
	// its fault parameters are selected up front from the seed.
	Parallel int
	// TimingFidelity forces sequential experiments by default so per-run
	// durations measure interpreter time, not scheduler contention — the
	// mode for Figure 4-style overhead measurements.
	TimingFidelity bool
	// ResolveSites selects faults with core.SelectTransientFaultSite: the
	// same seeded stream and the same site distribution, but every parameter
	// tuple carries the static instruction index it landed on. Requires a
	// profile with site data.
	ResolveSites bool
	// Prune statically pre-classifies experiments whose injection target is
	// provably dead (see internal/sassan): those are tallied as Masked
	// without running the workload. Implies ResolveSites. Outcome tallies
	// are identical to an unpruned campaign with the same seed — the
	// differential test in prune_test.go holds the two byte-equal.
	Prune bool
	// Classes enables class-representative sampling: injection sites are
	// grouped into fault-propagation equivalence classes
	// (sassan.BuildClassTable), and within each shard-sized chunk of the
	// selection only the first experiment of each class executes. The other
	// members inherit the representative's classification without running
	// and are counted in Tally.ClassAnswered. Implies ResolveSites.
	// Grouping is chunk-local by ShardSize, so a distributed campaign picks
	// exactly the representatives the single-process runner picks. Sites the
	// analysis cannot class (control escalation, opaque dataflow, unverified
	// kernels) always run individually. The new JSON fields are omitted when
	// the option is off, keeping those campaigns byte-identical to builds
	// that predate it; classes_test.go holds the differential.
	Classes bool `json:",omitempty"`
	// Checkpoint enables the checkpoint-and-fork engine: the golden
	// trajectory is recorded once with device snapshots, and every
	// experiment restores from the snapshot nearest its injection point
	// instead of re-executing the fault-free prefix, with early-exit
	// classification at later checkpoint boundaries. Implies ResolveSites.
	// Per-run classifications are identical to a from-scratch campaign with
	// the same seed — the differential test in checkpoint_test.go holds the
	// two byte-equal.
	Checkpoint bool
	// CkptStride overrides the automatic checkpoint stride (in global warp
	// instructions). Zero derives it from the golden run's length
	// (autoCheckpointStride).
	CkptStride uint64
	// NoEarlyExit keeps checkpointed restores but disables early-exit
	// classification, forcing every experiment to run to completion.
	NoEarlyExit bool
	// NoXlate forces every experiment (and the recorded golden trajectory)
	// through the legacy interpreter instead of the block-level translation
	// engine. Outcomes are identical either way — the differential tests
	// hold translated and interpreted campaigns byte-equal — so this is an
	// escape hatch and a debugging aid, not a semantic knob.
	NoXlate bool
	// TargetCI enables adaptive statistical sampling: the campaign stops at
	// the first shard boundary where the stratified Wilson interval on the
	// SDC share has half-width at most TargetCI at the Confidence level,
	// instead of running all MaxInjections experiments. Selection is
	// unchanged — the seeded per-shard streams are simply consumed in order
	// until the estimate converges — so the decision is a pure function of
	// (seed, completed-shard prefix) and a distributed run stops at exactly
	// the same shard as the in-process runner. Implies ResolveSites. Zero
	// (the default) disables adaptive sampling; the new fields are omitted
	// from the encoding so fixed-count campaigns keep their prior bytes.
	TargetCI float64 `json:",omitempty"`
	// Confidence is the adaptive stopping rule's confidence level (default
	// 0.95). Only meaningful with TargetCI > 0.
	Confidence float64 `json:",omitempty"`
	// MaxInjections caps an adaptive campaign's selection budget (default:
	// Injections). With TargetCI > 0 the campaign's selection identity —
	// shard count, per-shard streams — is that of a fixed MaxInjections-
	// experiment campaign; convergence just stops consuming it early.
	MaxInjections int `json:",omitempty"`
	// Model names the fault model (internal/faultmodel registry). Empty means
	// the default transient destination-register flip, and encodes to the
	// byte-identical config of builds that predate the subsystem. A non-default
	// model implies site-resolved selection filtered to the model's eligible
	// opcodes, and folds the model name into the selection seed — the model is
	// part of the campaign's identity, like Seed and ShardSize.
	Model string `json:",omitempty"`
	// ModelParam is the model's parameter string (e.g. "value=0,bit=17" for
	// stuck). Validated by the model; empty is always valid.
	ModelParam string `json:",omitempty"`
	// ShardSize is the number of experiments per selection shard (default
	// DefaultShardSize). Fault selection is blocked by shard: experiments
	// [s*ShardSize, (s+1)*ShardSize) draw their parameters from a dedicated
	// RNG seeded with ShardSeed(Seed, s), so a distributed campaign whose
	// workers select their own shards produces exactly the parameter list —
	// hence exactly the tally — of a single process with the same Seed and
	// ShardSize. Changing ShardSize changes which faults a given seed
	// selects; it is part of the campaign's identity, like Seed.
	ShardSize int
}

func (c TransientCampaignConfig) withDefaults() TransientCampaignConfig {
	if c.Injections == 0 {
		c.Injections = 100
	}
	// An explicit default-model name normalizes to the empty string so that
	// `-model=transient` configs encode byte-identically to configs that never
	// mention a model.
	if c.Model == faultmodel.DefaultName {
		c.Model = ""
	}
	if c.Group == 0 {
		c.Group = sass.GroupGPPR
		if c.Model != "" {
			if m, err := faultmodel.Lookup(c.Model); err == nil {
				c.Group = m.DefaultGroup()
			}
		}
	}
	if c.BitFlip == 0 {
		c.BitFlip = core.FlipSingleBit
	}
	if c.Parallel <= 0 {
		if c.TimingFidelity {
			c.Parallel = 1
		} else {
			c.Parallel = runtime.NumCPU()
		}
	}
	if c.ShardSize <= 0 {
		c.ShardSize = DefaultShardSize
	}
	if c.TargetCI > 0 {
		if c.Confidence == 0 {
			c.Confidence = DefaultConfidence
		}
		if c.MaxInjections == 0 {
			c.MaxInjections = c.Injections
		}
		// The selection identity of an adaptive campaign is the full
		// MaxInjections budget; NumShards/ShardRange and the per-shard
		// streams are those of a fixed MaxInjections-experiment campaign.
		c.Injections = c.MaxInjections
	}
	return c
}

// DefaultConfidence is the adaptive stopping rule's default confidence
// level.
const DefaultConfidence = 0.95

// NumShards returns how many selection shards the campaign splits into.
func (c TransientCampaignConfig) NumShards() int {
	c = c.withDefaults()
	return (c.Injections + c.ShardSize - 1) / c.ShardSize
}

// ShardRange returns the half-open experiment range [lo, hi) of one shard.
func (c TransientCampaignConfig) ShardRange(shard int) (lo, hi int) {
	c = c.withDefaults()
	lo = shard * c.ShardSize
	hi = min(lo+c.ShardSize, c.Injections)
	return lo, hi
}

// CampaignResult aggregates one campaign.
type CampaignResult struct {
	Program       string
	Tally         *Tally
	Weighted      *stats.WeightedTally // permanent campaigns: weighted by opcode activity
	Runs          []RunResult
	GoldenTime    time.Duration
	TotalRunTime  time.Duration // sum of experiment durations
	MedianRunTime time.Duration
	// Translated reports whether experiments ran on the block-level
	// translation engine (true) or the legacy interpreter (NoXlate).
	Translated bool
	// Adaptive describes the stopping decision of an adaptive campaign
	// (TargetCI > 0); nil otherwise.
	Adaptive *AdaptiveResult
	// Model and ModelParam echo the campaign's fault model (empty for the
	// default transient flip).
	Model      string
	ModelParam string
}

// RunTransientCampaign selects cfg.Injections faults from the profile and
// runs one experiment per fault (Figure 1 repeated N times; the data behind
// Figure 2). Selection is blocked by shard (see ShardSeed), so the same
// campaign distributed over internal/serve workers produces a byte-identical
// tally. Cancelling ctx stops in-flight experiments promptly and returns
// the partial result alongside the context error.
func RunTransientCampaign(ctx context.Context, r Runner, w Workload, golden *GoldenResult,
	profile *core.Profile, cfg TransientCampaignConfig) (*CampaignResult, error) {
	cfg = cfg.withDefaults()
	plan, err := NewShardPlan(r, w, golden, profile, cfg)
	if err != nil {
		return nil, err
	}
	annotate := func(res *CampaignResult) *CampaignResult {
		if res != nil {
			res.Model = cfg.Model
			res.ModelParam = cfg.ModelParam
		}
		return res
	}
	if cfg.TargetCI > 0 {
		res, err := runAdaptiveCampaign(ctx, plan)
		return annotate(res), err
	}
	params, err := plan.selectAll()
	if err != nil {
		return nil, err
	}
	results, errs := plan.runRange(ctx, params)
	if err := errors.Join(errs...); err != nil {
		// Degrade gracefully: summarize the runs that completed and return
		// the aggregated per-run errors alongside the partial result.
		res := summarize(w.Name(), golden, filterOK(results, errs), nil)
		res.Translated = !cfg.NoXlate
		return annotate(res), err
	}
	res := summarize(w.Name(), golden, results, nil)
	res.Translated = !cfg.NoXlate
	return annotate(res), nil
}

// filterOK returns the results whose runs completed without error.
func filterOK(results []RunResult, errs []error) []RunResult {
	ok := make([]RunResult, 0, len(results))
	for i := range results {
		if errs[i] == nil {
			ok = append(ok, results[i])
		}
	}
	return ok
}

// RunPermanentCampaign runs one permanent fault per executed opcode and
// weights each outcome by that opcode's share of dynamic instructions (the
// data behind Figure 3). Cancelling ctx stops in-flight experiments
// promptly and returns the partial result alongside the context error.
func RunPermanentCampaign(ctx context.Context, r Runner, w Workload, golden *GoldenResult,
	profile *core.Profile, bf core.BitFlipModel, seed int64, parallel int) (*CampaignResult, error) {
	if bf == 0 {
		bf = core.FlipSingleBit
	}
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	rr := r.applyDefaults()
	rng := rand.New(rand.NewSource(seed))
	faults, err := core.SelectPermanentFaults(profile, rr.Family, rr.NumSMs, bf, rng)
	if err != nil {
		return nil, err
	}
	totals := profile.OpcodeTotals()
	opset := sass.OpcodeSet(rr.Family)

	results := make([]RunResult, len(faults))
	weights := make([]float64, len(faults))
	errs := make([]error, len(faults))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallel)
	for i := range faults {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := rr.RunPermanent(ctx, w, golden, *faults[i], nil, nil)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = *res
			weights[i] = float64(totals[opset[faults[i].OpcodeID]])
		}(i)
	}
	wg.Wait()

	weighted := &stats.WeightedTally{}
	for i := range results {
		if errs[i] == nil {
			weighted.Add(results[i].Class.Outcome.String(), weights[i])
		}
	}
	if err := errors.Join(errs...); err != nil {
		res := summarize(w.Name(), golden, filterOK(results, errs), weighted)
		res.Translated = !rr.NoXlate
		return res, err
	}
	res := summarize(w.Name(), golden, results, weighted)
	res.Translated = !rr.NoXlate
	return res, nil
}

func summarize(name string, golden *GoldenResult, results []RunResult, weighted *stats.WeightedTally) *CampaignResult {
	tally := NewTally()
	var total time.Duration
	durs := make([]time.Duration, 0, len(results))
	for i := range results {
		tally.Add(results[i].Class)
		if results[i].Stratum != "" {
			tally.addStratum(results[i].Stratum, results[i].Class.Outcome)
		}
		if results[i].Pruned {
			// A pruned experiment never ran: its outcome is static, the
			// fault provably activates-and-masks, and it has no measured
			// duration to fold into the timing figures.
			tally.Pruned++
			continue
		}
		if results[i].ClassAnswered {
			// An answered class member never ran either: its classification
			// is its representative's, so it contributes no duration or
			// activation data of its own.
			tally.ClassAnswered++
			continue
		}
		if results[i].ClassID != "" {
			tally.ClassReps++
		}
		if !results[i].Injection.Activated && results[i].Activations == 0 && weighted == nil {
			tally.NotActivated++
		}
		if results[i].Restored {
			tally.Restored++
		}
		if results[i].EarlyExit {
			tally.EarlyExits++
		}
		total += results[i].Duration
		durs = append(durs, results[i].Duration)
	}
	return &CampaignResult{
		Program:       name,
		Tally:         tally,
		Weighted:      weighted,
		Runs:          results,
		GoldenTime:    golden.Duration,
		TotalRunTime:  total,
		MedianRunTime: median(durs),
	}
}

func median(d []time.Duration) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := slices.Clone(d)
	slices.Sort(s)
	return s[len(s)/2]
}
