package campaign

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/faultmodel"
)

// Sharded fault selection. A campaign's experiments are split into fixed-
// size shards, and each shard draws its parameter tuples from a dedicated
// RNG seeded by (campaign seed, shard index). The single-process runner
// selects shard by shard in order, so the full parameter list is the
// concatenation of the per-shard lists — which is exactly what lets the
// campaign service hand shard s to any worker, at any time, in any order:
// the worker reconstructs shard s's parameters from the seed pair alone,
// and the union over shards is a partition of the single-process selection.
// shard_test.go proves the equivalence; serve's end-to-end test proves the
// resulting tallies byte-identical.

// DefaultShardSize is the default experiments-per-shard granularity: small
// enough that a 100-injection campaign spreads across a handful of workers
// and a lost shard re-runs cheaply, large enough that per-shard setup
// (golden verification, lease traffic) amortizes.
const DefaultShardSize = 25

// ShardSeed derives shard s's selection seed from the campaign seed with a
// splitmix64-style mix, so neighbouring shards get decorrelated streams
// even for adjacent campaign seeds.
func ShardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(shard+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// modelSeed folds the fault-model name into the campaign seed: the model is
// part of the campaign's selection identity, so campaigns differing only by
// model draw decorrelated parameter streams, and a worker reconstructing a
// shard for model m lands on the submitting process's stream.
func modelSeed(seed int64, model string) int64 {
	if model == "" {
		return seed
	}
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(model); i++ {
		h = (h ^ uint64(model[i])) * 0x100000001b3
	}
	return int64(uint64(seed) ^ h)
}

// SelectShard selects the parameter tuples of one shard from the profile:
// experiments [lo, hi) of the campaign, drawn from the shard's own seeded
// stream. It is pure selection — no workload runs — so a worker can call it
// for any shard it leases. A non-default fault model narrows the site
// population to its eligible opcodes and shifts the seed by the model name;
// the per-experiment stream shape (one Int63n, two Float64) is unchanged.
func SelectShard(profile *core.Profile, cfg TransientCampaignConfig, shard int) ([]core.TransientParams, error) {
	cfg = cfg.withDefaults()
	if shard < 0 || shard >= cfg.NumShards() {
		return nil, fmt.Errorf("campaign: shard %d out of range (campaign has %d shards)", shard, cfg.NumShards())
	}
	var model faultmodel.Model
	if cfg.Model != "" {
		m, err := faultmodel.Lookup(cfg.Model)
		if err != nil {
			return nil, err
		}
		model = m
	}
	lo, hi := cfg.ShardRange(shard)
	rng := rand.New(rand.NewSource(ShardSeed(modelSeed(cfg.Seed, cfg.Model), shard)))
	resolve := cfg.ResolveSites || cfg.Prune || cfg.Checkpoint || cfg.Classes || cfg.TargetCI > 0
	params := make([]core.TransientParams, 0, hi-lo)
	for i := lo; i < hi; i++ {
		var p *core.TransientParams
		var err error
		if model != nil {
			p, err = core.SelectTransientFaultSiteFiltered(profile, cfg.Group, cfg.BitFlip, model.EligibleOp, rng)
		} else if resolve {
			p, err = core.SelectTransientFaultSite(profile, cfg.Group, cfg.BitFlip, rng)
		} else {
			p, err = core.SelectTransientFault(profile, cfg.Group, cfg.BitFlip, rng)
		}
		if err != nil {
			return nil, err
		}
		params = append(params, *p)
	}
	return params, nil
}

// ShardPlan is the per-job execution state a campaign shares across its
// shards: the runner, the golden reference, the profile, and — when the
// config asks for them — the static pruner and the recorded golden trace.
// Building the plan once and running many shards against it is what both
// the in-process campaign and a service worker do, so the two paths cannot
// drift: an experiment executes identically whether its shard ran locally
// or was leased over HTTP.
type ShardPlan struct {
	runner  Runner
	w       Workload
	golden  *GoldenResult
	profile *core.Profile
	cfg     TransientCampaignConfig
	trace   *cuda.Trace
	pr      *pruner
	cl      *classer
	// strat and weights are set when the config enables adaptive stratified
	// sampling (TargetCI > 0): strat assigns each resolved site to its
	// stratum, weights is the full-selection stratum composition the
	// stopping rule pools against.
	strat   *stratifier
	weights []StratumWeight
	// model and env are set for non-default fault models (cfg.Model != "");
	// runOne then dispatches through Runner.RunModel instead of RunTransient.
	model faultmodel.Model
	env   faultmodel.Env
}

// NewShardPlan validates the config against the golden result and performs
// the shared per-campaign setup: the pruner's liveness analyses (Prune) and
// the recorded golden trajectory (Checkpoint).
func NewShardPlan(r Runner, w Workload, golden *GoldenResult, profile *core.Profile,
	cfg TransientCampaignConfig) (*ShardPlan, error) {
	cfg = cfg.withDefaults()
	if cfg.NoXlate {
		// The config travels with the job (a service worker reconstructs its
		// runner from it), so the engine choice must ride here, not only on
		// the runner the submitting process happened to build.
		r.NoXlate = true
	}
	plan := &ShardPlan{runner: r, w: w, golden: golden, profile: profile, cfg: cfg}
	if cfg.Model != "" {
		m, err := faultmodel.Lookup(cfg.Model)
		if err != nil {
			return nil, err
		}
		if err := m.ValidateParam(cfg.ModelParam); err != nil {
			return nil, err
		}
		// The destination-flip accelerations reason statically about transient
		// flip semantics; a model must declare each one sound or the campaign
		// refuses the combination rather than silently miscounting.
		caps := m.Caps()
		if cfg.Prune && !caps.Has(faultmodel.CapPrune) {
			return nil, fmt.Errorf("campaign: fault model %q does not support -prune (dead-destination pruning is only sound for the transient destination-flip model)", m.Name())
		}
		if cfg.Classes && !caps.Has(faultmodel.CapClasses) {
			return nil, fmt.Errorf("campaign: fault model %q does not support -classes (fault-equivalence classes answer members only under destination-flip semantics)", m.Name())
		}
		if cfg.Checkpoint && !caps.Has(faultmodel.CapCheckpoint) {
			return nil, fmt.Errorf("campaign: fault model %q does not support -checkpoint (snapshot restore assumes a single-shot fault after a fault-free prefix)", m.Name())
		}
		if golden.Kernels == nil {
			return nil, fmt.Errorf("campaign: fault model %q requires the golden kernel view; rebuild the golden result with Runner.Golden", m.Name())
		}
		plan.model = m
		plan.env = ModelEnv(r, golden, profile)
	}
	if cfg.Prune {
		if golden.Kernels == nil {
			return nil, fmt.Errorf("campaign: prune requested but the golden result carries no kernels; rebuild it with Runner.Golden")
		}
		plan.pr = newPruner(golden.Kernels)
	}
	if cfg.Classes {
		if golden.Kernels == nil {
			return nil, fmt.Errorf("campaign: class sampling requested but the golden result carries no kernels; rebuild it with Runner.Golden")
		}
		plan.cl = newClasser(golden.Kernels)
	}
	if cfg.TargetCI > 0 {
		if cfg.TargetCI >= 1 {
			return nil, fmt.Errorf("campaign: target CI %v outside (0,1)", cfg.TargetCI)
		}
		if golden.Kernels == nil {
			return nil, fmt.Errorf("campaign: adaptive sampling requested but the golden result carries no kernels; rebuild it with Runner.Golden")
		}
		cl := plan.cl
		if cl == nil {
			cl = newClasser(golden.Kernels)
		}
		plan.strat = &stratifier{cl: cl, noCertain: noCertainStrata(cfg)}
		weights, err := AdaptiveStrata(golden, profile, cfg)
		if err != nil {
			return nil, err
		}
		plan.weights = weights
	}
	if cfg.Checkpoint {
		stride := cfg.CkptStride
		if stride == 0 {
			stride = autoCheckpointStride(golden.Stats.WarpInstrs)
		}
		trace, err := r.RecordTrace(w, golden, stride)
		if err != nil {
			return nil, err
		}
		plan.trace = trace
	}
	return plan, nil
}

// Config returns the plan's defaults-applied campaign config.
func (pl *ShardPlan) Config() TransientCampaignConfig { return pl.cfg }

// NumShards returns the number of shards the plan's campaign splits into.
func (pl *ShardPlan) NumShards() int { return pl.cfg.NumShards() }

// selectAll concatenates every shard's selection: the single-process
// parameter list, identical to what the shards produce separately.
func (pl *ShardPlan) selectAll() ([]core.TransientParams, error) {
	params := make([]core.TransientParams, 0, pl.cfg.Injections)
	for s := 0; s < pl.cfg.NumShards(); s++ {
		shard, err := SelectShard(pl.profile, pl.cfg, s)
		if err != nil {
			return nil, err
		}
		params = append(params, shard...)
	}
	return params, nil
}

// runOne executes (or statically classifies) a single experiment.
func (pl *ShardPlan) runOne(ctx context.Context, p core.TransientParams) (*RunResult, error) {
	if pl.model != nil {
		return pl.runner.RunModel(ctx, pl.w, pl.golden, pl.model, p, pl.cfg.ModelParam, pl.env)
	}
	if pl.trace != nil {
		return pl.runner.runTransientCheckpointed(ctx, pl.w, pl.golden, pl.trace, p, pl.cfg.NoEarlyExit)
	}
	return pl.runner.RunTransient(ctx, pl.w, pl.golden, p)
}

// runRange executes one experiment per parameter tuple with the plan's
// Parallel bound, returning results and errors index-aligned with params.
// A cancelled ctx stops dispatching and marks the remaining experiments
// with the context's error; already-running experiments abort promptly via
// the device cancellation hook. With class sampling on, grouping is done
// per shard-sized chunk of params: the whole-campaign list partitions into
// exactly the chunks RunShard sees one at a time, so both paths pick the
// same representatives.
func (pl *ShardPlan) runRange(ctx context.Context, params []core.TransientParams) ([]RunResult, []error) {
	results := make([]RunResult, len(params))
	errs := make([]error, len(params))
	if pl.cl == nil {
		idxs := make([]int, len(params))
		for i := range idxs {
			idxs[i] = i
		}
		pl.runIndexes(ctx, params, idxs, results, errs)
		pl.assignStrata(params, results, errs)
		return results, errs
	}
	for lo := 0; lo < len(params); lo += pl.cfg.ShardSize {
		hi := min(lo+pl.cfg.ShardSize, len(params))
		pl.runChunkClassed(ctx, params, lo, hi, results, errs)
	}
	pl.assignStrata(params, results, errs)
	return results, errs
}

// assignStrata labels each completed result with its sampling stratum when
// the plan runs adaptively. Pruned and class-answered results are labelled
// too: they count in the tally, so they count in their stratum.
func (pl *ShardPlan) assignStrata(params []core.TransientParams, results []RunResult, errs []error) {
	if pl.strat == nil {
		return
	}
	for i := range results {
		if errs[i] == nil {
			results[i].Stratum, _ = pl.strat.classify(params[i])
		}
	}
}

// runIndexes executes the experiments at the given param indexes with the
// plan's Parallel bound, writing into the index-aligned results and errs.
func (pl *ShardPlan) runIndexes(ctx context.Context, params []core.TransientParams, idxs []int, results []RunResult, errs []error) {
	var wg sync.WaitGroup
	// Acquire the semaphore before spawning so a 1000-injection campaign
	// keeps at most Parallel goroutines alive instead of parking them all.
	sem := make(chan struct{}, pl.cfg.Parallel)
	for _, i := range idxs {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		// Pruning comes before checkpoint planning: a statically-dead site
		// never runs, so it must not touch the trace at all.
		if pl.pr != nil && pl.pr.prunable(params[i]) {
			results[i] = prunedResult(pl.golden, params[i])
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := pl.runOne(ctx, params[i])
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = *res
		}(i)
	}
	wg.Wait()
}

// runChunkClassed executes one shard-sized chunk [lo, hi) under class
// sampling: the first experiment of each equivalence class in the chunk
// runs as the representative (alongside every unclassable experiment), then
// the remaining members inherit its classification. Pruning wins over
// classing — a provably-dead site keeps its static answer and never
// becomes a representative or member.
func (pl *ShardPlan) runChunkClassed(ctx context.Context, params []core.TransientParams, lo, hi int, results []RunResult, errs []error) {
	run := make([]int, 0, hi-lo)
	repOf := make(map[string]int)  // kernel-qualified class ID -> rep index
	members := make(map[int][]int) // rep index -> member indexes
	classID := make(map[int]string)
	for i := lo; i < hi; i++ {
		if pl.pr != nil && pl.pr.prunable(params[i]) {
			run = append(run, i) // runIndexes prunes it statically
			continue
		}
		c := pl.cl.classOf(params[i])
		if c == nil {
			run = append(run, i)
			continue
		}
		key := params[i].KernelName + "\x00" + c.ID
		if rep, ok := repOf[key]; ok {
			members[rep] = append(members[rep], i)
			continue
		}
		repOf[key] = i
		classID[i] = c.ID
		run = append(run, i)
	}
	pl.runIndexes(ctx, params, run, results, errs)
	for _, rep := range repOf {
		if errs[rep] == nil {
			results[rep].ClassID = classID[rep]
		}
	}
	for rep, ms := range members {
		for _, i := range ms {
			if errs[rep] != nil {
				errs[i] = fmt.Errorf("campaign: class representative experiment %d failed: %w", rep, errs[rep])
				continue
			}
			results[i] = classAnsweredResult(&results[rep], pl.golden, params[i])
		}
	}
}

// RunShard selects and executes one shard, returning its per-run results in
// experiment order. Unlike the whole-campaign path there is no partial
// degradation: a shard either completes or fails as a unit, because the
// service retries failed shards whole.
func (pl *ShardPlan) RunShard(ctx context.Context, shard int) ([]RunResult, error) {
	params, err := SelectShard(pl.profile, pl.cfg, shard)
	if err != nil {
		return nil, err
	}
	results, errs := pl.runRange(ctx, params)
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// TallyRuns folds a slice of per-run results into a tally, exactly as the
// whole-campaign summary does: per-shard tallies built with it merge into
// the single-process campaign tally (see Tally.Merge).
func TallyRuns(results []RunResult) *Tally {
	tally := NewTally()
	for i := range results {
		tally.Add(results[i].Class)
		if results[i].Stratum != "" {
			tally.addStratum(results[i].Stratum, results[i].Class.Outcome)
		}
		if results[i].Pruned {
			// A pruned experiment never ran: its outcome is static and the
			// fault provably activates-and-masks.
			tally.Pruned++
			continue
		}
		if results[i].ClassAnswered {
			// An answered class member never ran: its representative's
			// classification stands in for it.
			tally.ClassAnswered++
			continue
		}
		if results[i].ClassID != "" {
			tally.ClassReps++
		}
		if !results[i].Injection.Activated && results[i].Activations == 0 {
			tally.NotActivated++
		}
		if results[i].Restored {
			tally.Restored++
		}
		if results[i].EarlyExit {
			tally.EarlyExits++
		}
	}
	return tally
}
