package campaign

import (
	"repro/internal/core"
	"repro/internal/sass"
	"repro/internal/sassan"
)

// pruner decides, per site-resolved parameter tuple, whether the experiment
// can be classified without running. The argument is conservative and rests
// on three facts:
//
//  1. The injector corrupts destination state *after* the targeted
//     instruction writes it (InsertAfter), so the corrupted values are
//     exactly those sassan.CorruptTargets enumerates, observed at the
//     LiveOut point of the instruction.
//  2. Analysis.DeadDests proves every one of those registers/predicates is
//     read on *no* path from that point before being rewritten — including
//     the extra registers a multi-register corruption touches, which are a
//     subset of the same target list.
//  3. Therefore the corrupted bits can influence nothing: the run is
//     architecturally identical to the golden run from the injection point
//     on, and its classification is the golden run's own (Masked, with the
//     golden run's anomaly flags).
//
// Anything the analysis cannot vouch for — a kernel name missing from the
// golden module set, a kernel whose verification reports errors (its CFG
// cannot be trusted), an out-of-range index, an op outside the sampled
// group — is left to run normally. Pruning never changes a tally, only
// which experiments execute; prune_test.go proves this differentially.
type pruner struct {
	kernels map[string]*sass.Kernel
	cache   map[string]*sassan.Analysis // nil entry: kernel not statically trustworthy
}

func newPruner(kernels map[string]*sass.Kernel) *pruner {
	return &pruner{kernels: kernels, cache: make(map[string]*sassan.Analysis)}
}

// analysis returns the cached liveness analysis for a kernel, or nil when
// the kernel is unknown or fails static verification.
func (pr *pruner) analysis(name string) *sassan.Analysis {
	if a, ok := pr.cache[name]; ok {
		return a
	}
	var a *sassan.Analysis
	if k := pr.kernels[name]; k != nil {
		if cand := sassan.Analyze(k); !sassan.HasErrors(cand.Verify()) {
			a = cand
		}
	}
	pr.cache[name] = a
	return a
}

// prunable reports whether the experiment's outcome is statically known.
func (pr *pruner) prunable(p core.TransientParams) bool {
	if !p.SiteResolved {
		return false
	}
	a := pr.analysis(p.KernelName)
	if a == nil {
		return false
	}
	i := p.StaticInstrIdx
	if i < 0 || i >= len(a.Kernel.Instrs) {
		return false
	}
	if !sass.GroupContains(p.Group, a.Kernel.Instrs[i].Op) {
		return false
	}
	return a.DeadDests(i)
}

// prunedResult synthesizes the RunResult a pruned experiment would have
// produced: Masked, carrying the golden run's anomaly state, with the
// injection record naming the statically chosen site.
func prunedResult(golden *GoldenResult, p core.TransientParams) RunResult {
	rec := core.InjectionRecord{
		Kernel:   p.KernelName,
		InstrIdx: p.StaticInstrIdx,
	}
	if k := golden.Kernels[p.KernelName]; k != nil {
		rec.Opcode = k.Instrs[p.StaticInstrIdx].Op
	}
	return RunResult{
		Pruned: true,
		Class: Classification{
			Outcome:         Masked,
			Symptom:         SymptomNone,
			PotentialDUE:    golden.BaselineClass.PotentialDUE,
			CUDAError:       golden.BaselineClass.CUDAError,
			DeviceLogEvents: golden.BaselineClass.DeviceLogEvents,
		},
		Injection: rec,
	}
}
