package campaign_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/report"
)

// modelMatrix is the differential matrix of the new fault models: every
// non-default model, with a representative parameter variant where the model
// takes one.
var modelMatrix = []struct {
	name  string
	model string
	param string
}{
	{"stuck", "stuck", ""},
	{"stuck-at-0-gated", "stuck", "value=0,p=0.5"},
	{"opsub", "opsub", ""},
	{"predflip", "predflip", ""},
	{"memfault", "memfault", ""},
}

// TestModelCampaignDeterminism: each model's 200-injection campaign is a pure
// function of the seed — run twice, the runlogs and tallies must be
// byte-identical.
func TestModelCampaignDeterminism(t *testing.T) {
	r, w, golden, profile := campaignFixture(t)
	for _, tc := range modelMatrix {
		t.Run(tc.name, func(t *testing.T) {
			cfg := campaign.TransientCampaignConfig{
				Injections: 200, Seed: 42, Model: tc.model, ModelParam: tc.param,
			}
			run := func() ([]byte, []byte) {
				res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Model != tc.model || res.ModelParam != tc.param {
					t.Fatalf("result model = %q/%q, want %q/%q", res.Model, res.ModelParam, tc.model, tc.param)
				}
				for i := range res.Runs {
					res.Runs[i].Duration = 0
				}
				res.GoldenTime, res.TotalRunTime, res.MedianRunTime = 0, 0, 0
				var runlog bytes.Buffer
				if err := report.WriteRunLog(&runlog, res); err != nil {
					t.Fatal(err)
				}
				tally, err := json.Marshal(res.Tally)
				if err != nil {
					t.Fatal(err)
				}
				return runlog.Bytes(), tally
			}
			log1, tally1 := run()
			log2, tally2 := run()
			if !bytes.Equal(tally1, tally2) {
				t.Fatalf("tally not reproducible:\n%s\n%s", tally1, tally2)
			}
			if !bytes.Equal(log1, log2) {
				t.Fatalf("runlog not reproducible (first divergence around byte %d)", firstDiff(log1, log2))
			}
			// A campaign that never activates a single fault exercises
			// nothing; every model must actually reach its fault site.
			var tl campaign.Tally
			if err := json.Unmarshal(tally1, &tl); err != nil {
				t.Fatal(err)
			}
			if tl.N != 200 {
				t.Fatalf("tally N = %d, want 200", tl.N)
			}
			if tl.NotActivated == 200 {
				t.Fatalf("model %s never activated a fault", tc.model)
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestModelShardedTallyIdentity: for every model, a campaign split into
// shards and merged must marshal a tally byte-identical to the in-process
// campaign — the identity distributed model campaigns rest on.
func TestModelShardedTallyIdentity(t *testing.T) {
	r, w, golden, profile := campaignFixture(t)
	for _, tc := range modelMatrix {
		t.Run(tc.name, func(t *testing.T) {
			cfg := campaign.TransientCampaignConfig{
				Injections: 200, Seed: 42, ShardSize: 60,
				Model: tc.model, ModelParam: tc.param,
			}
			full, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := campaign.NewShardPlan(r, w, golden, profile, cfg)
			if err != nil {
				t.Fatal(err)
			}
			merged := campaign.NewTally()
			for s := plan.NumShards() - 1; s >= 0; s-- {
				results, err := plan.RunShard(context.Background(), s)
				if err != nil {
					t.Fatal(err)
				}
				merged.Merge(campaign.TallyRuns(results))
			}
			a, _ := json.Marshal(full.Tally)
			b, _ := json.Marshal(merged)
			if !bytes.Equal(a, b) {
				t.Fatalf("model %s tally mismatch:\ncampaign: %s\nsharded:  %s", tc.model, a, b)
			}
		})
	}
}

// TestModelSeedIsModelScoped: the same seed under different models selects
// from differently-filtered site populations with decorrelated streams — the
// model name is part of the campaign's identity.
func TestModelSeedIsModelScoped(t *testing.T) {
	_, _, _, profile := campaignFixture(t)
	params := map[string]string{}
	for _, model := range []string{"", "stuck", "opsub"} {
		cfg := campaign.TransientCampaignConfig{Injections: 10, Seed: 42, Model: model}
		sel, err := campaign.SelectShard(profile, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, p := range sel {
			b, _ := json.Marshal(p)
			sb.Write(b)
		}
		params[model] = sb.String()
	}
	if params[""] == params["stuck"] || params["stuck"] == params["opsub"] {
		t.Fatal("different models drew identical selection streams from one seed")
	}
}

// TestModelGuardRails: campaign accelerations whose soundness argument rests
// on destination-flip semantics must be refused — client-side, at plan
// construction — for models that do not declare the capability.
func TestModelGuardRails(t *testing.T) {
	r, w, golden, profile := campaignFixture(t)
	cases := []struct {
		name string
		cfg  campaign.TransientCampaignConfig
		want string
	}{
		{"prune", campaign.TransientCampaignConfig{Injections: 10, Model: "stuck", Prune: true}, "-prune"},
		{"classes", campaign.TransientCampaignConfig{Injections: 10, Model: "opsub", Classes: true}, "-classes"},
		{"checkpoint", campaign.TransientCampaignConfig{Injections: 10, Model: "memfault", Checkpoint: true}, "-checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := campaign.NewShardPlan(r, w, golden, profile, tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("NewShardPlan = %v, want refusal mentioning %s", err, tc.want)
			}
			// The campaign entry point must fail the same way.
			if _, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, tc.cfg); err == nil {
				t.Fatal("RunTransientCampaign accepted an unsound configuration")
			}
		})
	}
	// The transient model keeps all accelerations.
	ok := campaign.TransientCampaignConfig{Injections: 10, Model: "transient", Prune: true, Classes: true}
	if _, err := campaign.NewShardPlan(r, w, golden, profile, ok); err != nil {
		t.Fatalf("transient model refused its own accelerations: %v", err)
	}
}

// TestModelConfigErrors: unknown models and malformed parameters fail fast at
// plan construction, before any experiment runs.
func TestModelConfigErrors(t *testing.T) {
	r, w, golden, profile := campaignFixture(t)
	bad := []campaign.TransientCampaignConfig{
		{Injections: 10, Model: "nosuch"},
		{Injections: 10, Model: "stuck", ModelParam: "value=7"},
		{Injections: 10, Model: "opsub", ModelParam: "weighted=1"},
	}
	for _, cfg := range bad {
		if _, err := campaign.NewShardPlan(r, w, golden, profile, cfg); err == nil {
			t.Fatalf("NewShardPlan accepted %+v", cfg)
		}
	}
}

// TestDefaultModelByteIdentity: naming the default model explicitly changes
// nothing — config encoding, selection, tally, and summary stay byte-identical
// to a config that predates the subsystem.
func TestDefaultModelByteIdentity(t *testing.T) {
	r, w, golden, profile := campaignFixture(t)
	legacy := campaign.TransientCampaignConfig{Injections: 30, Seed: 7}
	named := campaign.TransientCampaignConfig{Injections: 30, Seed: 7, Model: "transient"}

	// The zero-model config encodes without any model field.
	enc, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(enc, []byte("Model")) {
		t.Fatalf("default config encoding mentions the model: %s", enc)
	}

	a, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, legacy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, named)
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := json.Marshal(a.Tally)
	tb, _ := json.Marshal(b.Tally)
	if !bytes.Equal(ta, tb) {
		t.Fatalf("explicit transient model changed the tally:\n%s\n%s", ta, tb)
	}
	if b.Model != "" {
		t.Fatalf("explicit transient model leaked into the result: %q", b.Model)
	}
	// And the stable summary JSON carries no model block for the default.
	var sa bytes.Buffer
	if err := report.WriteSummaryJSON(&sa, a); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sa.Bytes(), []byte(`"model"`)) {
		t.Fatalf("default summary mentions a model: %s", sa.Bytes())
	}
}

// TestAdaptiveModelCampaign: an adaptive campaign under a non-default model
// runs to a stopping decision with no certain (zero-variance) strata — the
// provably-masked shortcut is only sound for destination flips.
func TestAdaptiveModelCampaign(t *testing.T) {
	r, w, golden, profile := campaignFixture(t)
	cfg := campaign.TransientCampaignConfig{
		Injections: 120, Seed: 9, ShardSize: 30, Model: "stuck",
		TargetCI: 0.45, // loose: stops after the first shards
	}
	res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive == nil {
		t.Fatal("adaptive model campaign returned no stopping decision")
	}
	if res.Model != "stuck" {
		t.Fatalf("adaptive result model = %q", res.Model)
	}
	for _, st := range res.Adaptive.Strata {
		if st.Certain {
			t.Fatalf("non-default model produced a certain stratum: %+v", st)
		}
	}
}
