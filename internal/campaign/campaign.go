// Package campaign orchestrates fault-injection experiments end-to-end:
// golden runs, per-run outcome classification against the paper's taxonomy
// (Table V: SDC, DUE, Masked, Potential DUE), hang detection via an
// instruction-budget monitor, and whole campaigns — N transient injections
// from a profile, or one permanent fault per executed opcode with
// dynamic-instruction weighting (Figures 2 and 3).
package campaign

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"slices"
	"sort"

	"repro/internal/cuda"
)

// Output is a workload's observable result: the standard output text, the
// produced output files, and the process exit code — the three channels the
// paper's outcome determination compares against the golden run.
type Output struct {
	Stdout   string
	Files    map[string][]byte
	ExitCode int
}

// NewOutput returns an empty output ready for use.
func NewOutput() *Output {
	return &Output{Files: make(map[string][]byte)}
}

// Printf appends formatted text to the simulated standard output.
func (o *Output) Printf(format string, args ...any) {
	o.Stdout += fmt.Sprintf(format, args...)
}

// Equal reports byte-exact equality of stdout and all files.
func (o *Output) Equal(other *Output) bool {
	if o.Stdout != other.Stdout || len(o.Files) != len(other.Files) {
		return false
	}
	for name, data := range o.Files {
		od, ok := other.Files[name]
		if !ok || string(od) != string(data) {
			return false
		}
	}
	return true
}

// Digest returns a hex SHA-256 over the output's three observable channels
// — stdout, the output files (in name order), and the exit code — with
// length framing so distinct outputs cannot collide by concatenation. Two
// outputs are Equal if and only if their digests match, which is what lets
// a campaign coordinator hand workers a golden digest instead of the full
// golden output: a worker whose locally computed golden run digests
// differently has diverged from the submitting coordinator and must not
// classify experiments against it.
func (o *Output) Digest() string {
	h := sha256.New()
	var n [8]byte
	put := func(b []byte) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	put([]byte(o.Stdout))
	names := make([]string, 0, len(o.Files))
	for name := range o.Files {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		put([]byte(name))
		put(o.Files[name])
	}
	binary.LittleEndian.PutUint64(n[:], uint64(int64(o.ExitCode)))
	h.Write(n[:])
	return hex.EncodeToString(h.Sum(nil))
}

// Workload is one benchmark program: it runs against a CUDA context and
// produces an Output, and it knows how to judge whether an observed output
// constitutes an SDC relative to the golden output (the paper's
// user-provided "SDC checking script", with program-specific tolerances).
type Workload interface {
	// Name returns the program name, e.g. "303.ostencil".
	Name() string
	// Description is a one-line summary (Table IV's description column).
	Description() string
	// Run executes the program on a fresh context. A returned error is the
	// analog of a process crash; an Output with nonzero ExitCode is the
	// analog of application-detected failure.
	Run(ctx *cuda.Context) (*Output, error)
	// Check reports whether observed matches golden closely enough that no
	// SDC occurred. It is only consulted when the runs are not byte-equal.
	Check(golden, observed *Output) bool
}

// Outcome is the error-propagation outcome class (Table V).
type Outcome uint8

// Outcomes. PotentialDUE is tracked as a flag on SDC/Masked runs and also
// exposed as its own category for reporting.
const (
	Masked Outcome = iota + 1
	SDC
	DUE
)

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "Masked"
	case SDC:
		return "SDC"
	case DUE:
		return "DUE"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Symptom is the detection channel behind an outcome (Table V's Symptom
// column).
type Symptom uint8

// Symptoms.
const (
	SymptomNone         Symptom = iota
	SymptomStdoutDiff           // SDC: standard output is different
	SymptomFileDiff             // SDC: output file is different
	SymptomAppCheckFail         // SDC: application-specific check failed
	SymptomTimeout              // DUE: hang caught by the monitor
	SymptomCrash                // DUE: process crash (OS detection)
	SymptomNonZeroExit          // DUE: non-zero exit status (application detection)
)

func (s Symptom) String() string {
	switch s {
	case SymptomNone:
		return "no difference detected"
	case SymptomStdoutDiff:
		return "standard output is different"
	case SymptomFileDiff:
		return "output file is different"
	case SymptomAppCheckFail:
		return "application-specific check failed"
	case SymptomTimeout:
		return "timeout, indicating a hang (monitor detection)"
	case SymptomCrash:
		return "process crash (OS detection)"
	case SymptomNonZeroExit:
		return "non-zero exit status (application detection)"
	default:
		return fmt.Sprintf("Symptom(%d)", uint8(s))
	}
}

// Classification is the full outcome of one injection run.
type Classification struct {
	Outcome Outcome
	Symptom Symptom
	// PotentialDUE marks an SDC or Masked run during which an unhandled
	// anomaly was recorded — a sticky CUDA error the application never
	// acted on, or a device-log ("dmesg") event. The paper counts these
	// runs as their underlying SDC/Masked outcome, which this package
	// also does; the flag preserves the distinction.
	PotentialDUE bool
	// CUDAError is the sticky context error, if any.
	CUDAError cuda.Error
	// DeviceLogEvents counts device-log entries emitted during the run.
	DeviceLogEvents int
}

// String renders e.g. "SDC (output file is different) [potential DUE]".
func (c Classification) String() string {
	s := fmt.Sprintf("%v (%v)", c.Outcome, c.Symptom)
	if c.PotentialDUE {
		s += " [potential DUE]"
	}
	return s
}

// Classify applies Table V to one completed run.
//
//   - runErr non-nil: the process crashed → DUE.
//   - a hang trap (instruction budget) → DUE via monitor timeout.
//   - nonzero exit code → DUE via application detection.
//   - stdout/file difference not accepted by the workload check → SDC.
//   - otherwise Masked.
//   - SDC/Masked with an unconsumed CUDA error or device-log event is
//     flagged as a potential DUE.
func Classify(w Workload, golden, observed *Output, runErr error, ctx *cuda.Context) Classification {
	cls := Classification{
		CUDAError:       ctx.LastError(),
		DeviceLogEvents: len(ctx.DeviceLog()),
	}
	if runErr != nil {
		cls.Outcome, cls.Symptom = DUE, SymptomCrash
		return cls
	}
	if t := ctx.StickyTrap(); t != nil && t.IsHang() {
		cls.Outcome, cls.Symptom = DUE, SymptomTimeout
		return cls
	}
	if observed.ExitCode != 0 {
		cls.Outcome, cls.Symptom = DUE, SymptomNonZeroExit
		return cls
	}
	anomaly := cls.CUDAError != cuda.Success || cls.DeviceLogEvents > 0
	if observed.Equal(golden) {
		cls.Outcome, cls.Symptom = Masked, SymptomNone
		cls.PotentialDUE = anomaly
		return cls
	}
	// Outputs differ; ask the program-specific check whether the deviation
	// is within tolerance.
	if w.Check(golden, observed) {
		cls.Outcome, cls.Symptom = Masked, SymptomNone
		cls.PotentialDUE = anomaly
		return cls
	}
	cls.Outcome = SDC
	switch {
	case observed.Stdout != golden.Stdout:
		cls.Symptom = SymptomStdoutDiff
	default:
		cls.Symptom = SymptomFileDiff
	}
	if !filesEqual(golden, observed) && observed.Stdout == golden.Stdout {
		cls.Symptom = SymptomFileDiff
	}
	cls.PotentialDUE = anomaly
	return cls
}

func filesEqual(a, b *Output) bool {
	if len(a.Files) != len(b.Files) {
		return false
	}
	for name, data := range a.Files {
		od, ok := b.Files[name]
		if !ok || string(od) != string(data) {
			return false
		}
	}
	return true
}

// Tally counts outcomes over a set of runs.
type Tally struct {
	N             int
	Counts        map[Outcome]int
	PotentialDUEs int
	NotActivated  int // transient runs whose fault never activated
	// Pruned counts experiments classified statically instead of run: the
	// injection target was proven dead (never read on any path), so the
	// outcome is Masked without executing the workload. Pruned runs are
	// included in N and Counts like any other run.
	Pruned int
	// Restored counts checkpointed experiments that started from a
	// mid-trajectory snapshot instead of re-executing their golden prefix.
	Restored int
	// EarlyExits counts checkpointed experiments whose state digest
	// re-converged with the golden trajectory, settling their tail from the
	// recording.
	EarlyExits int
	// ClassReps counts experiments that executed as the representative of a
	// fault-equivalence class (class-representative sampling).
	ClassReps int
	// ClassAnswered counts experiments that never executed because a class
	// representative answered for them: they inherit the representative's
	// classification and are included in N and Counts like any other run.
	ClassAnswered int
	// Strata holds per-stratum outcome counts when the campaign runs with
	// adaptive stratified sampling (TargetCI > 0). Sorted by Key; empty and
	// omitted from the encoding otherwise.
	Strata []StratumTally
}

// StratumTally is one stratum's outcome counts within a tally: experiments
// whose injection site falls in one fault-equivalence class (key
// "kernel:classID") or in the residual stratum of unclassable sites (key
// "~").
type StratumTally struct {
	Key    string `json:"key"`
	N      int    `json:"n"`
	SDC    int    `json:"sdc,omitempty"`
	DUE    int    `json:"due,omitempty"`
	Masked int    `json:"masked,omitempty"`
}

// NewTally returns an empty tally.
func NewTally() *Tally {
	return &Tally{Counts: make(map[Outcome]int)}
}

// Add records one classification.
func (t *Tally) Add(c Classification) {
	t.N++
	t.Counts[c.Outcome]++
	if c.PotentialDUE {
		t.PotentialDUEs++
	}
}

// stratumAt finds or inserts the stratum with the given key, keeping
// t.Strata sorted so two tallies over the same runs encode identically
// regardless of accumulation order.
func (t *Tally) stratumAt(key string) *StratumTally {
	i := sort.Search(len(t.Strata), func(i int) bool { return t.Strata[i].Key >= key })
	if i == len(t.Strata) || t.Strata[i].Key != key {
		t.Strata = append(t.Strata, StratumTally{})
		copy(t.Strata[i+1:], t.Strata[i:])
		t.Strata[i] = StratumTally{Key: key}
	}
	return &t.Strata[i]
}

// addStratum records one outcome in the named stratum.
func (t *Tally) addStratum(key string, o Outcome) {
	s := t.stratumAt(key)
	s.N++
	switch o {
	case SDC:
		s.SDC++
	case DUE:
		s.DUE++
	case Masked:
		s.Masked++
	}
}

// Fraction returns the share of an outcome in [0,1].
func (t *Tally) Fraction(o Outcome) float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.Counts[o]) / float64(t.N)
}

// String renders "SDC 32.5% DUE 4.2% Masked 63.3%".
func (t *Tally) String() string {
	return fmt.Sprintf("SDC %.1f%% DUE %.1f%% Masked %.1f%%",
		100*t.Fraction(SDC), 100*t.Fraction(DUE), 100*t.Fraction(Masked))
}

// Merge folds another tally into this one. Every Tally field is an additive
// per-run counter, so merging per-shard tallies in any order reproduces the
// tally a single process would have computed over the union of the runs —
// the identity the campaign service's coordinator relies on.
func (t *Tally) Merge(o *Tally) {
	if o == nil {
		return
	}
	t.N += o.N
	for outcome, n := range o.Counts {
		t.Counts[outcome] += n
	}
	t.PotentialDUEs += o.PotentialDUEs
	t.NotActivated += o.NotActivated
	t.Pruned += o.Pruned
	t.Restored += o.Restored
	t.EarlyExits += o.EarlyExits
	t.ClassReps += o.ClassReps
	t.ClassAnswered += o.ClassAnswered
	for _, os := range o.Strata {
		s := t.stratumAt(os.Key)
		s.N += os.N
		s.SDC += os.SDC
		s.DUE += os.DUE
		s.Masked += os.Masked
	}
}

// TallySchema versions the stable JSON encoding of Tally. The same encoding
// is used by the campaign service API, the JSON run summary, and the
// benchmark tooling, so a consumer can check one field to know the shape.
const TallySchema = "nvbitfi.tally/v1"

// tallyJSON is the wire form: fixed field order, outcome counts flattened
// out of the map so the encoding is byte-stable across processes.
type tallyJSON struct {
	Schema        string `json:"schema"`
	N             int    `json:"n"`
	SDC           int    `json:"sdc"`
	DUE           int    `json:"due"`
	Masked        int    `json:"masked"`
	PotentialDUEs int    `json:"potential_dues"`
	NotActivated  int    `json:"not_activated"`
	Pruned        int    `json:"pruned"`
	Restored      int    `json:"restored"`
	EarlyExits    int    `json:"early_exits"`
	// The class counters are omitted when zero so campaigns that never
	// enabled class sampling keep their pre-existing byte encoding.
	ClassReps     int `json:"class_reps,omitempty"`
	ClassAnswered int `json:"class_answered,omitempty"`
	// Strata is omitted when empty so fixed-count campaigns keep their
	// pre-existing byte encoding; adaptive campaigns populate it.
	Strata []StratumTally `json:"strata,omitempty"`
}

// MarshalJSON renders the stable, schema-versioned encoding. Two tallies
// with equal counts marshal to identical bytes.
func (t *Tally) MarshalJSON() ([]byte, error) {
	return json.Marshal(tallyJSON{
		Schema:        TallySchema,
		N:             t.N,
		SDC:           t.Counts[SDC],
		DUE:           t.Counts[DUE],
		Masked:        t.Counts[Masked],
		PotentialDUEs: t.PotentialDUEs,
		NotActivated:  t.NotActivated,
		Pruned:        t.Pruned,
		Restored:      t.Restored,
		EarlyExits:    t.EarlyExits,
		ClassReps:     t.ClassReps,
		ClassAnswered: t.ClassAnswered,
		Strata:        t.Strata,
	})
}

// UnmarshalJSON accepts the versioned encoding (and, leniently, documents
// written before the schema field existed).
func (t *Tally) UnmarshalJSON(b []byte) error {
	var w tallyJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.Schema != "" && w.Schema != TallySchema {
		return fmt.Errorf("campaign: unsupported tally schema %q (want %q)", w.Schema, TallySchema)
	}
	t.N = w.N
	t.Counts = map[Outcome]int{}
	if w.SDC != 0 {
		t.Counts[SDC] = w.SDC
	}
	if w.DUE != 0 {
		t.Counts[DUE] = w.DUE
	}
	if w.Masked != 0 {
		t.Counts[Masked] = w.Masked
	}
	t.PotentialDUEs = w.PotentialDUEs
	t.NotActivated = w.NotActivated
	t.Pruned = w.Pruned
	t.Restored = w.Restored
	t.EarlyExits = w.EarlyExits
	t.ClassReps = w.ClassReps
	t.ClassAnswered = w.ClassAnswered
	t.Strata = w.Strata
	return nil
}
