package campaign_test

import (
	"context"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/report"
	"repro/internal/sassan"
)

// deadSrc is a kernel with three intentionally dead destination writes
// (R10, R11, R12 are never read on any path): the sites the static pruner
// must prove Masked. The remaining writes all feed the STG, so injections
// into them can produce SDCs or traps and keep the differential comparison
// honest.
const deadSrc = `
.kernel deadk
.param outptr
    S2R R0, SR_TID.X
    MOV R10, R0
    IADD R11, R0, 0x7
    SHL R12, R0, 0x3
    IADD R1, R0, 0x1
    IADD R2, R1, 0x2
    SHL R3, R0, 0x2
    IADD R4, R3, c0[outptr]
    STG.32 [R4], R2
    EXIT
`

// deadWorkload drives deadSrc: 64 threads, output buffer printed to stdout
// so every live-register corruption is observable.
type deadWorkload struct{}

func (deadWorkload) Name() string        { return "deadwrite" }
func (deadWorkload) Description() string { return "kernel with intentionally dead destination writes" }

func (deadWorkload) Run(ctx *cuda.Context) (*campaign.Output, error) {
	out := campaign.NewOutput()
	mod, err := ctx.LoadModule("dead", deadSrc)
	if err != nil {
		return out, err
	}
	fn, err := mod.Function("deadk")
	if err != nil {
		return out, err
	}
	buf, err := ctx.Malloc(4 * 64)
	if err != nil {
		return out, err
	}
	cfg := cuda.LaunchConfig{Grid: gpu.Dim3{X: 1, Y: 1, Z: 1}, Block: gpu.Dim3{X: 64, Y: 1, Z: 1}}
	// Unchecked-style host code: launch errors surface as missing output.
	_ = ctx.Launch(fn, cfg, buf)
	b, err := ctx.MemcpyDtoH(buf, 4*64)
	if err != nil {
		return out, nil
	}
	for i := 0; i+4 <= len(b); i += 4 {
		out.Printf("%d ", binary.LittleEndian.Uint32(b[i:]))
	}
	return out, nil
}

func (deadWorkload) Check(golden, observed *campaign.Output) bool { return golden.Equal(observed) }

// TestPruneDifferential is the prune soundness proof the design demands:
// a >=200-injection campaign with pruning enabled must produce exactly the
// outcome tallies of the unpruned campaign with the same seed, while
// actually pruning a nonzero number of experiments.
func TestPruneDifferential(t *testing.T) {
	w := deadWorkload{}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	base := campaign.TransientCampaignConfig{Injections: 200, Seed: 31, ResolveSites: true}
	unpruned, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, base)
	if err != nil {
		t.Fatal(err)
	}
	withPrune := base
	withPrune.Prune = true
	pruned, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, withPrune)
	if err != nil {
		t.Fatal(err)
	}

	if pruned.Tally.Pruned == 0 {
		t.Fatal("campaign over a kernel with three dead writes pruned nothing")
	}
	if unpruned.Tally.Pruned != 0 {
		t.Fatalf("unpruned campaign reported %d pruned runs", unpruned.Tally.Pruned)
	}
	if pruned.Tally.N != unpruned.Tally.N {
		t.Fatalf("run counts differ: pruned %d, unpruned %d", pruned.Tally.N, unpruned.Tally.N)
	}
	for _, o := range []campaign.Outcome{campaign.Masked, campaign.SDC, campaign.DUE} {
		if pruned.Tally.Counts[o] != unpruned.Tally.Counts[o] {
			t.Errorf("%v count: pruned %d, unpruned %d", o, pruned.Tally.Counts[o], unpruned.Tally.Counts[o])
		}
	}
	if pruned.Tally.PotentialDUEs != unpruned.Tally.PotentialDUEs {
		t.Errorf("potential DUEs: pruned %d, unpruned %d",
			pruned.Tally.PotentialDUEs, unpruned.Tally.PotentialDUEs)
	}
	// Stronger than the tallies: every experiment classifies identically,
	// and each pruned experiment's unpruned twin really ran, activated, and
	// masked — the static claim, confirmed dynamically.
	prunedRuns := 0
	for i := range pruned.Runs {
		if pruned.Runs[i].Class != unpruned.Runs[i].Class {
			t.Fatalf("run %d classified %v pruned vs %v unpruned",
				i, pruned.Runs[i].Class, unpruned.Runs[i].Class)
		}
		if !pruned.Runs[i].Pruned {
			continue
		}
		prunedRuns++
		twin := unpruned.Runs[i].Injection
		if !twin.Activated {
			t.Errorf("run %d was pruned but its unpruned twin never activated", i)
		}
		if unpruned.Runs[i].Class.Outcome != campaign.Masked {
			t.Errorf("run %d was pruned but its unpruned twin was %v", i, unpruned.Runs[i].Class.Outcome)
		}
		if twin.Kernel != pruned.Runs[i].Injection.Kernel || twin.InstrIdx != pruned.Runs[i].Injection.InstrIdx {
			t.Errorf("run %d pruned site %s#%d, twin injected %s#%d", i,
				pruned.Runs[i].Injection.Kernel, pruned.Runs[i].Injection.InstrIdx, twin.Kernel, twin.InstrIdx)
		}
	}
	if prunedRuns != pruned.Tally.Pruned {
		t.Errorf("tally says %d pruned, runs say %d", pruned.Tally.Pruned, prunedRuns)
	}
	if sum := report.Summary(pruned); !strings.Contains(sum, "statically pruned") {
		t.Errorf("CLI summary does not surface the pruned count: %q", sum)
	}
	t.Logf("pruned %d/%d experiments; tallies %v", pruned.Tally.Pruned, pruned.Tally.N, pruned.Tally)
}

// benchPruneCampaign times a 200-injection site-resolved campaign over the
// dead-write workload, with and without static pruning. The speedup scales
// with the fraction of selections landing on dead destinations (~40% here);
// shipped workloads are lint-clean, so their pruned fraction is zero by
// construction.
func benchPruneCampaign(b *testing.B, prune bool) {
	w := deadWorkload{}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		b.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		b.Fatal(err)
	}
	cfg := campaign.TransientCampaignConfig{
		Injections: 200, Seed: 31, ResolveSites: true, Prune: prune, TimingFidelity: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if prune && res.Tally.Pruned == 0 {
			b.Fatal("pruned campaign pruned nothing")
		}
	}
}

func BenchmarkTransientCampaignUnpruned(b *testing.B) { benchPruneCampaign(b, false) }
func BenchmarkTransientCampaignPruned(b *testing.B)   { benchPruneCampaign(b, true) }

// TestPruneRequiresKernels: pruning against a golden result that predates
// kernel capture must fail loudly instead of silently not pruning.
func TestPruneRequiresKernels(t *testing.T) {
	w := deadWorkload{}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	stale := *golden
	stale.Kernels = nil
	_, err = campaign.RunTransientCampaign(context.Background(), r, w, &stale, profile,
		campaign.TransientCampaignConfig{Injections: 4, Seed: 1, Prune: true})
	if err == nil || !strings.Contains(err.Error(), "no kernels") {
		t.Fatalf("prune with kernel-less golden result: err = %v", err)
	}
}

// TestLintWorkloadFindsDeadWrites: the campaign-level lint entry point
// surfaces the dead-write diagnostics the pruner feeds on.
func TestLintWorkloadFindsDeadWrites(t *testing.T) {
	diags, err := campaign.Runner{}.LintWorkload(deadWorkload{})
	if err != nil {
		t.Fatal(err)
	}
	dead := 0
	for _, d := range diags {
		if d.Code == sassan.CodeDeadWrite {
			dead++
		}
	}
	if dead != 3 {
		t.Fatalf("lint found %d dead writes in deadSrc, want 3 (diags: %v)", dead, diags)
	}
}

// TestVerifyModulesRejectsBadModule: a Runner with VerifyModules set builds
// contexts that refuse modules failing static verification; the same module
// loads and runs cleanly on a permissive runner.
func TestVerifyModulesRejectsBadModule(t *testing.T) {
	w := badSpanWorkload{}
	if _, err := (campaign.Runner{VerifyModules: true}).Golden(w); err == nil {
		t.Fatal("verifying runner accepted a module whose load destination span reaches RZ")
	}
	if _, err := (campaign.Runner{}).Golden(w); err != nil {
		t.Fatalf("non-verifying runner rejected the same module at load: %v", err)
	}
}

// badSpanWorkload loads a kernel with a verifier error that is harmless at
// run time: LDG.128 into R252 spans R252..RZ, which the verifier rejects as
// a bad destination but the engine executes (skipping RZ) without fault.
type badSpanWorkload struct{}

func (badSpanWorkload) Name() string        { return "badspan" }
func (badSpanWorkload) Description() string { return "kernel that fails static verification" }

func (badSpanWorkload) Run(ctx *cuda.Context) (*campaign.Output, error) {
	out := campaign.NewOutput()
	src := `
.kernel badk
.param ptr
    IADD R0, RZ, c0[ptr]
    LDG.128 R252, [R0]
    EXIT
`
	mod, err := ctx.LoadModule("bad", src)
	if err != nil {
		return out, err
	}
	fn, err := mod.Function("badk")
	if err != nil {
		return out, err
	}
	buf, err := ctx.Malloc(64)
	if err != nil {
		return out, err
	}
	cfg := cuda.LaunchConfig{Grid: gpu.Dim3{X: 1, Y: 1, Z: 1}, Block: gpu.Dim3{X: 32, Y: 1, Z: 1}}
	if err := ctx.Launch(fn, cfg, buf); err != nil {
		return out, err
	}
	out.Printf("ok\n")
	return out, nil
}

func (badSpanWorkload) Check(golden, observed *campaign.Output) bool { return golden.Equal(observed) }
