package campaign_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/sass"
	"repro/internal/specaccel"
)

// benchTarget is the small-kernel workload the amortization benchmarks
// inject into. 303.ostencil has 2 static kernels and 101 dynamic launches:
// large enough that an experiment does real work, small enough that the
// per-run fixed cost (assemble + encode + decode + codec construction) is
// visible against it.
const benchTarget = "303.ostencil"

func benchWorkload(b *testing.B) campaign.Workload {
	b.Helper()
	w, err := specaccel.ByName(benchTarget)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkTransientExperiment measures one complete transient-fault
// experiment: fresh device + context, injector attach, workload run,
// classification. This is the unit a 10k-run campaign repeats, so every
// microsecond here multiplies by the campaign size.
// BenchmarkTransientExperimentInterpreted is the same experiment with the
// block-level translation engine disabled — the per-injection before/after
// pair recorded in BENCH_campaign.json.
func BenchmarkTransientExperiment(b *testing.B)            { benchTransientExperiment(b, false) }
func BenchmarkTransientExperimentInterpreted(b *testing.B) { benchTransientExperiment(b, true) }

func benchTransientExperiment(b *testing.B, noXlate bool) {
	w := benchWorkload(b)
	r := campaign.Runner{NoXlate: noXlate}
	golden, err := r.Golden(w)
	if err != nil {
		b.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.SelectTransientFault(profile, sass.GroupGPPR, core.FlipSingleBit,
		rand.New(rand.NewSource(42)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunTransient(context.Background(), w, golden, *p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransientCampaignE2E measures a full end-to-end campaign —
// golden run, exact profile, then 100 sequential injections — and reports
// the setup (golden + profile) and injection phases separately, so the
// per-experiment fixed cost the module cache amortizes is visible in the
// custom metrics.
func BenchmarkTransientCampaignE2E(b *testing.B) {
	const injections = 100
	w := benchWorkload(b)
	r := campaign.Runner{}
	var setupNS, runNS int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		golden, err := r.Golden(w)
		if err != nil {
			b.Fatal(err)
		}
		profile, _, err := r.Profile(w, core.Exact)
		if err != nil {
			b.Fatal(err)
		}
		setupNS += time.Since(start).Nanoseconds()

		start = time.Now()
		res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile,
			campaign.TransientCampaignConfig{
				Injections: injections, Seed: 7, TimingFidelity: true,
			})
		if err != nil {
			b.Fatal(err)
		}
		runNS += time.Since(start).Nanoseconds()
		if res.Tally.N != injections {
			b.Fatalf("campaign ran %d experiments, want %d", res.Tally.N, injections)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(setupNS)/float64(b.N)/1e6, "setup-ms/op")
	b.ReportMetric(float64(runNS)/float64(b.N)/1e6, "campaign-ms/op")
	b.ReportMetric(float64(runNS)/float64(b.N)/float64(injections)/1e6, "ms/injection")
}
