package campaign

import (
	"repro/internal/core"
	"repro/internal/sass"
	"repro/internal/sassan"
	"repro/internal/stats"
)

// classer resolves site-resolved parameter tuples to fault-equivalence
// classes (sassan.BuildClassTable): groups of injection sites whose
// fault-propagation shadows canonicalize identically, so one representative
// experiment answers for every member. Only *masked* classes — shadows that
// provably reach no store, address, or control sink — are answered: their
// outcome is invariant over bit, lane, and occurrence, the same argument
// that justifies static pruning, extended to transitively-dead dataflow.
// Data-bearing classes stay in the table for analysis (sasslint -classes)
// but run individually, because whether a stored corruption is observed
// depends on dynamic state the shadow cannot see: which thread stores
// where, and whether that cell survives into the checked output. Like the
// pruner, the classer only trusts kernels the golden run decoded
// unambiguously and that pass static verification; everything else runs
// individually. Classing never changes a tally relative to running every
// member — classes_test.go proves this differentially by injecting every
// member of sampled classes.
type classer struct {
	kernels map[string]*sass.Kernel
	cache   map[string]*sassan.ClassTable // nil entry: kernel not statically trustworthy
}

func newClasser(kernels map[string]*sass.Kernel) *classer {
	return &classer{kernels: kernels, cache: make(map[string]*sassan.ClassTable)}
}

// table returns the cached class table for a kernel, or nil when the kernel
// is unknown or fails static verification.
func (cl *classer) table(name string) *sassan.ClassTable {
	if t, ok := cl.cache[name]; ok {
		return t
	}
	var t *sassan.ClassTable
	if k := cl.kernels[name]; k != nil {
		if a := sassan.Analyze(k); !sassan.HasErrors(a.Verify()) {
			t = a.BuildClassTable()
		}
	}
	cl.cache[name] = t
	return t
}

// classOf returns the equivalence class of a parameter tuple's injection
// site, or nil when the site must run individually (unresolved site,
// untrusted kernel, op outside the sampled group, unclassable shadow, or a
// data-bearing class whose outcome is not provably bit/lane-invariant).
func (cl *classer) classOf(p core.TransientParams) *sassan.Class {
	if !p.SiteResolved {
		return nil
	}
	t := cl.table(p.KernelName)
	if t == nil {
		return nil
	}
	i := p.StaticInstrIdx
	if i < 0 || i >= len(cl.kernels[p.KernelName].Instrs) {
		return nil
	}
	if !sass.GroupContains(p.Group, cl.kernels[p.KernelName].Instrs[i].Op) {
		return nil
	}
	c := t.ClassOf(i)
	if c == nil || !c.Masked {
		return nil
	}
	return c
}

// classAnsweredResult synthesizes the RunResult of a class member answered
// by its representative: the representative's classification and activation
// state, with the injection record naming the member's own site.
func classAnsweredResult(rep *RunResult, golden *GoldenResult, p core.TransientParams) RunResult {
	rec := core.InjectionRecord{
		Kernel:    p.KernelName,
		InstrIdx:  p.StaticInstrIdx,
		Activated: rep.Injection.Activated,
	}
	if k := golden.Kernels[p.KernelName]; k != nil {
		rec.Opcode = k.Instrs[p.StaticInstrIdx].Op
	}
	return RunResult{
		Class:         rep.Class,
		Injection:     rec,
		Activations:   rep.Activations,
		ClassID:       rep.ClassID,
		ClassAnswered: true,
	}
}

// ClassWeighted aggregates a classed campaign's outcomes with one
// observation per *executed* experiment, weighted by how many injections
// that experiment answers for: 1 for an individually-run site, 1+members
// for a class representative. The Kish effective sample size of the result
// (stats.EffectiveSampleSize) is what honest confidence intervals over a
// class-sampled campaign must use — a representative is one independent
// observation, not one per member. Returns nil when no run carries class
// information (classing off), so callers can gate reporting on it.
func ClassWeighted(runs []RunResult) *stats.WeightedTally {
	classed := false
	// Grouping is chunk-local, so one class can have several representatives
	// across a campaign; its answered members split evenly between them.
	answered := make(map[string]int) // kernel-qualified class ID -> answered members
	reps := make(map[string]int)     // kernel-qualified class ID -> representatives
	key := func(r *RunResult) string { return r.Injection.Kernel + "\x00" + r.ClassID }
	for i := range runs {
		switch {
		case runs[i].ClassAnswered:
			classed = true
			answered[key(&runs[i])]++
		case runs[i].ClassID != "":
			classed = true
			reps[key(&runs[i])]++
		}
	}
	if !classed {
		return nil
	}
	w := &stats.WeightedTally{}
	for i := range runs {
		if runs[i].ClassAnswered {
			continue
		}
		weight := 1.0
		if runs[i].ClassID != "" {
			k := key(&runs[i])
			weight += float64(answered[k]) / float64(reps[k])
		}
		w.Add(runs[i].Class.Outcome.String(), weight)
	}
	return w
}
