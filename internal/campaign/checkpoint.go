package campaign

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/nvbit"
)

// Checkpoint-and-fork campaign mode. A transient campaign spends most of its
// time re-executing the fault-free prefix of every experiment: a fault at
// dynamic instruction k replays k golden instructions before anything
// diverges. This mode records the golden trajectory once with device
// snapshots at a fixed warp-instruction stride, then starts each experiment
// from the snapshot nearest its injection point and, once the fault has
// fired, compares a state digest against the recorded trajectory at every
// later checkpoint boundary — a match proves the run re-converged and the
// rest of its classification can be taken from the recording (early exit).
// DESIGN.md section 3.4 gives the soundness argument.

// DefaultCheckpointCount is the number of checkpoints the automatic stride
// aims for across the golden run: enough that an average experiment skips
// ~97% of its prefix, few enough that snapshot memory stays bounded.
const DefaultCheckpointCount = 32

// MinCheckpointStride floors the automatic checkpoint stride (in warp
// instructions) so short workloads do not snapshot after every handful of
// instructions.
const MinCheckpointStride = 256

// autoCheckpointStride derives the checkpoint stride from the golden run's
// warp-instruction total.
func autoCheckpointStride(goldenWarpInstrs uint64) uint64 {
	return max(goldenWarpInstrs/DefaultCheckpointCount, MinCheckpointStride)
}

// RecordTrace re-runs the workload fault-free on a recording context,
// journaling every driver call and snapshotting the device at every stride
// warp instructions. The recording must reproduce the golden output exactly
// — a workload whose host code is nondeterministic cannot anchor replays.
func (r Runner) RecordTrace(w Workload, golden *GoldenResult, stride uint64) (*cuda.Trace, error) {
	r = r.applyDefaults()
	ctx, err := r.newContext()
	if err != nil {
		return nil, err
	}
	ctx.SetDefaultBudget(r.GoldenBudget)
	if err := ctx.StartRecording(stride); err != nil {
		return nil, err
	}
	out, runErr := w.Run(ctx)
	trace, err := ctx.FinishRecording()
	if err != nil {
		return nil, fmt.Errorf("campaign: recording %s: %w", w.Name(), err)
	}
	if runErr != nil {
		return nil, fmt.Errorf("campaign: recording run of %s failed: %w", w.Name(), runErr)
	}
	if out == nil || !out.Equal(golden.Output) || out.ExitCode != golden.Output.ExitCode {
		return nil, fmt.Errorf("campaign: recording run of %s diverged from the golden output", w.Name())
	}
	return trace, nil
}

// runTransientCheckpointed performs one transient experiment against a
// recorded trace: the workload's driver calls replay from the journal up to
// the checkpoint nearest the injection point, the device restores there,
// and execution is real from then on, with early-exit probing at recorded
// boundaries. If the workload's calls diverge from the journal before the
// restore point — a nondeterministic host — the experiment transparently
// falls back to a from-scratch run. A cancelled hostCtx aborts the
// experiment promptly, as in RunTransient.
func (r Runner) runTransientCheckpointed(hostCtx context.Context, w Workload, golden *GoldenResult,
	trace *cuda.Trace, p core.TransientParams, noEarlyExit bool) (*RunResult, error) {
	if err := hostCtx.Err(); err != nil {
		return nil, err
	}
	r = r.applyDefaults()
	ctx, err := r.newContext()
	if err != nil {
		return nil, err
	}
	ctx.SetCancel(hostCtx)
	ctx.SetDefaultBudget(r.experimentBudget(golden))
	inj, err := core.NewTransientInjector(p)
	if err != nil {
		return nil, err
	}
	staticIdx := -1
	if p.SiteResolved {
		staticIdx = p.StaticInstrIdx
	}
	plan := trace.PlanRestore(p.KernelName, p.KernelCount, staticIdx, p.InstrCount, p.Thread != nil)
	plan.NoEarlyExit = noEarlyExit
	plan.Probe = func() bool { return inj.Record().Activated }
	inj.SetCounterBase(plan.CounterBase)
	if err := ctx.BeginReplay(trace, plan); err != nil {
		return nil, err
	}
	att, err := nvbit.Attach(ctx, inj)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	out, runErr := w.Run(ctx)
	d := time.Since(start)
	att.Detach()
	if err := hostCtx.Err(); err != nil {
		// The run was cut short by cancellation; whatever output it produced
		// does not describe the fault's behaviour, so classify nothing.
		return nil, err
	}
	if repErr := ctx.ReplayErr(); repErr != nil {
		// The host did not repeat the recorded call sequence, so the
		// snapshot does not describe this execution. Classify nothing;
		// rerun the experiment from scratch.
		return r.RunTransient(hostCtx, w, golden, p)
	}
	if out == nil {
		out = NewOutput()
	}
	return &RunResult{
		Class:     Classify(w, golden.Output, out, runErr, ctx),
		Injection: inj.Record(),
		Duration:  d,
		Stats:     ctx.AccumulatedStats(),
		Restored:  ctx.ReplayRestored(),
		EarlyExit: ctx.ReplayEarlyExited(),
	}, nil
}
