package campaign

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sass"
)

// fakeWorkload lets classification be driven without a device.
type fakeWorkload struct {
	tolerant bool
}

func (f *fakeWorkload) Name() string        { return "fake" }
func (f *fakeWorkload) Description() string { return "fake workload" }
func (f *fakeWorkload) Run(*cuda.Context) (*Output, error) {
	return NewOutput(), nil
}
func (f *fakeWorkload) Check(golden, observed *Output) bool { return f.tolerant }

func freshCtx(t *testing.T) *cuda.Context {
	t.Helper()
	dev, err := gpu.NewDevice(sass.FamilyVolta, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := cuda.NewContext(dev)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// poisonedCtx returns a context carrying a sticky error of the given trap
// kind.
func poisonedCtx(t *testing.T, hang bool) *cuda.Context {
	t.Helper()
	ctx := freshCtx(t)
	src := `
.kernel bad
    MOV R1, 0x4
    LDG.32 R2, [R1]
    EXIT
`
	if hang {
		src = `
.kernel bad
loop:
    BRA loop
`
		ctx.SetDefaultBudget(1000)
	}
	mod, err := ctx.LoadModule("m", src)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := mod.Function("bad")
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(fn, cuda.LaunchConfig{
		Grid: gpu.Dim3{X: 1, Y: 1, Z: 1}, Block: gpu.Dim3{X: 32, Y: 1, Z: 1},
	}); err != nil {
		t.Fatal(err)
	}
	return ctx
}

func out(stdout string, files map[string][]byte, exit int) *Output {
	o := NewOutput()
	o.Stdout = stdout
	for k, v := range files {
		o.Files[k] = v
	}
	o.ExitCode = exit
	return o
}

// TestClassifyTableV drives every row of the paper's outcome table.
func TestClassifyTableV(t *testing.T) {
	golden := out("result 1.0\n", map[string][]byte{"f": {1, 2}}, 0)
	w := &fakeWorkload{}
	tests := []struct {
		name     string
		observed *Output
		runErr   error
		ctx      func(t *testing.T) *cuda.Context
		tolerant bool
		outcome  Outcome
		symptom  Symptom
		potDUE   bool
	}{
		{
			name:     "masked",
			observed: out("result 1.0\n", map[string][]byte{"f": {1, 2}}, 0),
			ctx:      freshCtx,
			outcome:  Masked, symptom: SymptomNone,
		},
		{
			name:     "stdout diff -> SDC",
			observed: out("result 2.0\n", map[string][]byte{"f": {1, 2}}, 0),
			ctx:      freshCtx,
			outcome:  SDC, symptom: SymptomStdoutDiff,
		},
		{
			name:     "file diff -> SDC",
			observed: out("result 1.0\n", map[string][]byte{"f": {1, 3}}, 0),
			ctx:      freshCtx,
			outcome:  SDC, symptom: SymptomFileDiff,
		},
		{
			name:     "diff within tolerance -> masked",
			observed: out("result 1.0000001\n", map[string][]byte{"f": {1, 2}}, 0),
			ctx:      freshCtx,
			tolerant: true,
			outcome:  Masked, symptom: SymptomNone,
		},
		{
			name:     "nonzero exit -> DUE",
			observed: out("", nil, 1),
			ctx:      freshCtx,
			outcome:  DUE, symptom: SymptomNonZeroExit,
		},
		{
			name:     "crash -> DUE",
			observed: NewOutput(),
			runErr:   errors.New("segfault"),
			ctx:      freshCtx,
			outcome:  DUE, symptom: SymptomCrash,
		},
		{
			name:     "hang -> DUE timeout",
			observed: out("result 1.0\n", map[string][]byte{"f": {1, 2}}, 0),
			ctx:      func(t *testing.T) *cuda.Context { return poisonedCtx(t, true) },
			outcome:  DUE, symptom: SymptomTimeout,
		},
		{
			name:     "masked with CUDA error -> potential DUE",
			observed: out("result 1.0\n", map[string][]byte{"f": {1, 2}}, 0),
			ctx:      func(t *testing.T) *cuda.Context { return poisonedCtx(t, false) },
			outcome:  Masked, symptom: SymptomNone, potDUE: true,
		},
		{
			name:     "SDC with CUDA error -> potential DUE",
			observed: out("garbage\n", map[string][]byte{"f": {9, 9}}, 0),
			ctx:      func(t *testing.T) *cuda.Context { return poisonedCtx(t, false) },
			outcome:  SDC, symptom: SymptomStdoutDiff, potDUE: true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			w.tolerant = tc.tolerant
			cls := Classify(w, golden, tc.observed, tc.runErr, tc.ctx(t))
			if cls.Outcome != tc.outcome || cls.Symptom != tc.symptom || cls.PotentialDUE != tc.potDUE {
				t.Fatalf("got %+v, want outcome=%v symptom=%v potDUE=%v",
					cls, tc.outcome, tc.symptom, tc.potDUE)
			}
		})
	}
}

func TestClassificationString(t *testing.T) {
	c := Classification{Outcome: SDC, Symptom: SymptomFileDiff, PotentialDUE: true}
	s := c.String()
	if !strings.Contains(s, "SDC") || !strings.Contains(s, "output file") ||
		!strings.Contains(s, "potential DUE") {
		t.Fatalf("classification string = %q", s)
	}
}

func TestOutputEqual(t *testing.T) {
	a := out("x", map[string][]byte{"f": {1}}, 0)
	if !a.Equal(out("x", map[string][]byte{"f": {1}}, 0)) {
		t.Error("identical outputs not equal")
	}
	if a.Equal(out("y", map[string][]byte{"f": {1}}, 0)) {
		t.Error("stdout diff missed")
	}
	if a.Equal(out("x", map[string][]byte{"f": {2}}, 0)) {
		t.Error("file content diff missed")
	}
	if a.Equal(out("x", map[string][]byte{"g": {1}}, 0)) {
		t.Error("file name diff missed")
	}
	if a.Equal(out("x", map[string][]byte{"f": {1}, "g": {2}}, 0)) {
		t.Error("file count diff missed")
	}
}

func TestTally(t *testing.T) {
	tally := NewTally()
	tally.Add(Classification{Outcome: SDC})
	tally.Add(Classification{Outcome: SDC})
	tally.Add(Classification{Outcome: Masked, PotentialDUE: true})
	tally.Add(Classification{Outcome: DUE})
	if tally.N != 4 || tally.Counts[SDC] != 2 || tally.PotentialDUEs != 1 {
		t.Fatalf("tally = %+v", tally)
	}
	if tally.Fraction(SDC) != 0.5 || tally.Fraction(Masked) != 0.25 {
		t.Fatalf("fractions wrong: %+v", tally)
	}
	if !strings.Contains(tally.String(), "SDC 50.0%") {
		t.Fatalf("tally string = %q", tally.String())
	}
	empty := NewTally()
	if empty.Fraction(SDC) != 0 {
		t.Error("empty tally fraction should be 0")
	}
}

func TestOutcomeStrings(t *testing.T) {
	if Masked.String() != "Masked" || SDC.String() != "SDC" || DUE.String() != "DUE" {
		t.Error("outcome names wrong")
	}
	for s := SymptomNone; s <= SymptomNonZeroExit; s++ {
		if strings.Contains(s.String(), "Symptom(") {
			t.Errorf("symptom %d has no name", s)
		}
	}
}
