package campaign_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/specaccel"
)

func campaignFixture(t *testing.T) (campaign.Runner, campaign.Workload, *campaign.GoldenResult, *core.Profile) {
	t.Helper()
	w, err := specaccel.ByName("314.omriq")
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	return r, w, golden, profile
}

// TestShardSeedDecorrelated: neighbouring shards and neighbouring campaign
// seeds must get distinct selection seeds.
func TestShardSeedDecorrelated(t *testing.T) {
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 4; seed++ {
		for shard := 0; shard < 16; shard++ {
			s := campaign.ShardSeed(seed, shard)
			if seen[s] {
				t.Fatalf("ShardSeed(%d, %d) = %d collides", seed, shard, s)
			}
			seen[s] = true
		}
	}
}

// TestShardRange: the shard ranges tile [0, Injections) exactly.
func TestShardRange(t *testing.T) {
	cfg := campaign.TransientCampaignConfig{Injections: 53, ShardSize: 10}
	if got := cfg.NumShards(); got != 6 {
		t.Fatalf("NumShards = %d, want 6", got)
	}
	next := 0
	for s := 0; s < cfg.NumShards(); s++ {
		lo, hi := cfg.ShardRange(s)
		if lo != next || hi <= lo {
			t.Fatalf("shard %d covers [%d,%d), want lo=%d", s, lo, hi, next)
		}
		next = hi
	}
	if next != 53 {
		t.Fatalf("shards cover [0,%d), want [0,53)", next)
	}
}

// TestShardSelectionIsPartition: selecting every shard separately — in any
// order — must reproduce exactly the runs of the single-process campaign,
// and the merged per-shard tallies must marshal byte-identically to the
// campaign tally. This is the identity the campaign service rests on.
func TestShardSelectionIsPartition(t *testing.T) {
	r, w, golden, profile := campaignFixture(t)
	cfg := campaign.TransientCampaignConfig{Injections: 30, Seed: 7, ShardSize: 10}

	full, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := campaign.NewShardPlan(r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", plan.NumShards())
	}

	// Run the shards in reverse order, as a work-stealing fleet might.
	merged := campaign.NewTally()
	runs := make([][]campaign.RunResult, plan.NumShards())
	for s := plan.NumShards() - 1; s >= 0; s-- {
		results, err := plan.RunShard(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		runs[s] = results
		merged.Merge(campaign.TallyRuns(results))
	}

	var flat []campaign.RunResult
	for _, rr := range runs {
		flat = append(flat, rr...)
	}
	if len(flat) != len(full.Runs) {
		t.Fatalf("sharded runs = %d, campaign runs = %d", len(flat), len(full.Runs))
	}
	for i := range flat {
		if flat[i].Class != full.Runs[i].Class || flat[i].Injection != full.Runs[i].Injection {
			t.Fatalf("run %d differs between sharded and in-process execution", i)
		}
	}

	a, err := json.Marshal(full.Tally)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("tally mismatch:\ncampaign: %s\nsharded:  %s", a, b)
	}
}

// TestShardedPrunedCheckpointedCampaign: the partition identity must hold
// with the pruning and checkpoint engines on — the modes the service's
// workers run with.
func TestShardedPrunedCheckpointedCampaign(t *testing.T) {
	r, w, golden, profile := campaignFixture(t)
	for _, cfg := range []campaign.TransientCampaignConfig{
		{Injections: 20, Seed: 11, ShardSize: 7, Prune: true},
		{Injections: 20, Seed: 11, ShardSize: 7, Checkpoint: true},
	} {
		full, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := campaign.NewShardPlan(r, w, golden, profile, cfg)
		if err != nil {
			t.Fatal(err)
		}
		merged := campaign.NewTally()
		for s := 0; s < plan.NumShards(); s++ {
			results, err := plan.RunShard(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			merged.Merge(campaign.TallyRuns(results))
		}
		a, _ := json.Marshal(full.Tally)
		b, _ := json.Marshal(merged)
		if !bytes.Equal(a, b) {
			t.Fatalf("prune=%v ckpt=%v tally mismatch:\ncampaign: %s\nsharded:  %s",
				cfg.Prune, cfg.Checkpoint, a, b)
		}
	}
}

// TestShardOutOfRange: selecting a shard outside the campaign fails.
func TestShardOutOfRange(t *testing.T) {
	_, _, _, profile := campaignFixture(t)
	cfg := campaign.TransientCampaignConfig{Injections: 10, ShardSize: 10}
	if _, err := campaign.SelectShard(profile, cfg, 1); err == nil {
		t.Fatal("shard 1 of a 1-shard campaign selected without error")
	}
	if _, err := campaign.SelectShard(profile, cfg, -1); err == nil {
		t.Fatal("shard -1 selected without error")
	}
}

// TestCampaignCancellation: a context cancelled up front stops the campaign
// before any experiment runs and surfaces the context error.
func TestCampaignCancellation(t *testing.T) {
	r, w, golden, profile := campaignFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := campaign.RunTransientCampaign(ctx, r, w, golden, profile,
		campaign.TransientCampaignConfig{Injections: 8, Seed: 3})
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	if res == nil || res.Tally.N != 0 {
		t.Fatalf("cancelled campaign still classified %d runs", res.Tally.N)
	}
}

// TestTallyJSONStable: the encoding is schema-versioned, byte-stable, and
// round-trips.
func TestTallyJSONStable(t *testing.T) {
	tl := campaign.NewTally()
	tl.Add(campaign.Classification{Outcome: campaign.SDC})
	tl.Add(campaign.Classification{Outcome: campaign.Masked})
	tl.Add(campaign.Classification{Outcome: campaign.Masked})
	tl.NotActivated = 1
	tl.Restored = 2
	a, err := json.Marshal(tl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(a), `"schema":"`+campaign.TallySchema+`"`) {
		t.Fatalf("encoding lacks schema field: %s", a)
	}
	b, _ := json.Marshal(tl)
	if !bytes.Equal(a, b) {
		t.Fatal("re-marshaling the same tally changed the bytes")
	}
	var back campaign.Tally
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatal(err)
	}
	c, _ := json.Marshal(&back)
	if !bytes.Equal(a, c) {
		t.Fatalf("round-trip changed the encoding:\n%s\n%s", a, c)
	}
	if err := json.Unmarshal([]byte(`{"schema":"nvbitfi.tally/v99"}`), &back); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

// TestTallyMergeCommutes: merging shard tallies in any order produces
// identical bytes.
func TestTallyMergeCommutes(t *testing.T) {
	mk := func(sdc, masked int) *campaign.Tally {
		tl := campaign.NewTally()
		for i := 0; i < sdc; i++ {
			tl.Add(campaign.Classification{Outcome: campaign.SDC})
		}
		for i := 0; i < masked; i++ {
			tl.Add(campaign.Classification{Outcome: campaign.Masked})
		}
		return tl
	}
	ab := mk(2, 1)
	ab.Merge(mk(1, 4))
	ba := mk(1, 4)
	ba.Merge(mk(2, 1))
	a, _ := json.Marshal(ab)
	b, _ := json.Marshal(ba)
	if !bytes.Equal(a, b) {
		t.Fatalf("merge order changed the tally: %s vs %s", a, b)
	}
}

// TestOutputDigest: equal outputs digest equally; any observable difference
// changes the digest.
func TestOutputDigest(t *testing.T) {
	a := campaign.NewOutput()
	a.Printf("hello %d\n", 42)
	a.Files = map[string][]byte{"out.dat": {1, 2, 3}}
	b := campaign.NewOutput()
	b.Printf("hello %d\n", 42)
	b.Files = map[string][]byte{"out.dat": {1, 2, 3}}
	if a.Digest() != b.Digest() {
		t.Fatal("equal outputs digest differently")
	}
	b.ExitCode = 1
	if a.Digest() == b.Digest() {
		t.Fatal("exit code not covered by the digest")
	}
	b.ExitCode = 0
	b.Files["out.dat"] = []byte{1, 2, 4}
	if a.Digest() == b.Digest() {
		t.Fatal("file contents not covered by the digest")
	}
}
