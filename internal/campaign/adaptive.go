package campaign

import (
	"context"
	"errors"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/faultmodel"
	"repro/internal/sass"
	"repro/internal/stats"
)

// Adaptive statistical sampling. A fixed-count campaign runs every selected
// experiment; the adaptive engine (TargetCI > 0) instead treats the
// Masked/SDC/DUE shares as estimates and stops at the first shard boundary
// where the pooled SDC-share interval is tight enough. The estimator is
// post-stratified over fault-equivalence classes: the seeded selection
// stream is untouched (so determinism and the distributed byte-identity
// invariant survive unchanged), but each resolved site is assigned to a
// stratum — its sassan equivalence class, or the residual stratum of
// unclassable sites — and per-stratum outcome proportions are pooled with
// the full selection's stratum composition as weights. Provably-masked
// classes are *certain* strata: their outcome is statically invariant, so
// they contribute population weight but zero sampling variance — the
// statistical relaxation of PR 8's masked-only soundness boundary.

// ResidualStratum keys the stratum of sites no equivalence class covers:
// unresolved sites, untrusted kernels, and unclassable shadows.
const ResidualStratum = "~"

// stratifier assigns resolved injection sites to sampling strata. Unlike
// classer.classOf it keys on *any* class, data-bearing included: strata
// need only be homogeneous-ish, not provably outcome-invariant.
type stratifier struct {
	cl *classer
	// noCertain suppresses the certain (zero-variance) marking of provably-
	// masked strata: the masked proof holds for destination-flip semantics,
	// so fault models without CapCertainStrata keep the stratum keys (the
	// grouping is still variance-reducing) but sample every stratum.
	noCertain bool
}

// classify returns the stratum key of a parameter tuple's injection site
// and whether the stratum's outcome is statically certain (a provably-
// masked class).
func (st *stratifier) classify(p core.TransientParams) (string, bool) {
	if !p.SiteResolved {
		return ResidualStratum, false
	}
	t := st.cl.table(p.KernelName)
	if t == nil {
		return ResidualStratum, false
	}
	i := p.StaticInstrIdx
	if i < 0 || i >= len(st.cl.kernels[p.KernelName].Instrs) {
		return ResidualStratum, false
	}
	if !sass.GroupContains(p.Group, st.cl.kernels[p.KernelName].Instrs[i].Op) {
		return ResidualStratum, false
	}
	c := t.ClassOf(i)
	if c == nil {
		return ResidualStratum, false
	}
	return p.KernelName + ":" + c.ID, c.Masked && !st.noCertain
}

// noCertainStrata reports whether the config's fault model forfeits
// certain-stratum pooling (it lacks CapCertainStrata).
func noCertainStrata(cfg TransientCampaignConfig) bool {
	m, err := faultmodel.Lookup(cfg.Model)
	if err != nil {
		return true
	}
	return !m.Caps().Has(faultmodel.CapCertainStrata)
}

// StratumWeight is one stratum's share of the full selection: how many of
// the campaign's MaxInjections experiments land in it. Weights are a pure
// function of (profile, config) — no workload runs — so the submitting
// coordinator, every worker, and the in-process runner all derive the same
// composition.
type StratumWeight struct {
	Key     string `json:"key"`
	Count   int    `json:"count"`
	Certain bool   `json:"certain,omitempty"`
}

// AdaptiveStrata computes the full-selection stratum composition of an
// adaptive campaign by selecting every shard (pure selection, no runs) and
// classifying each site. Returns nil when the config is not adaptive.
func AdaptiveStrata(golden *GoldenResult, profile *core.Profile, cfg TransientCampaignConfig) ([]StratumWeight, error) {
	cfg = cfg.withDefaults()
	if cfg.TargetCI <= 0 {
		return nil, nil
	}
	st := &stratifier{cl: newClasser(golden.Kernels), noCertain: noCertainStrata(cfg)}
	counts := make(map[string]*StratumWeight)
	order := make([]string, 0, 8)
	for s := 0; s < cfg.NumShards(); s++ {
		params, err := SelectShard(profile, cfg, s)
		if err != nil {
			return nil, err
		}
		for i := range params {
			key, certain := st.classify(params[i])
			w := counts[key]
			if w == nil {
				w = &StratumWeight{Key: key, Certain: certain}
				counts[key] = w
				order = append(order, key)
			}
			w.Count++
		}
	}
	weights := make([]StratumWeight, 0, len(order))
	for _, key := range order {
		weights = append(weights, *counts[key])
	}
	sort.Slice(weights, func(i, j int) bool { return weights[i].Key < weights[j].Key })
	return weights, nil
}

// AdaptivePooled builds the stratified estimator for an accumulated tally
// against the full-selection stratum composition — the shared pooling step
// behind the stopping rule, the report, and the submit CLI.
func AdaptivePooled(t *Tally, weights []StratumWeight) *stats.StratifiedTally {
	st := stats.NewStratified()
	for _, w := range weights {
		st.AddStratum(w.Key, float64(w.Count), w.Certain)
	}
	for _, s := range t.Strata {
		st.Observe(s.Key, "SDC", s.SDC)
		st.Observe(s.Key, "DUE", s.DUE)
		st.Observe(s.Key, "Masked", s.Masked)
	}
	return st
}

// AdaptiveDecision evaluates the shard-boundary stopping rule on an
// accumulated tally: the achieved half-width of the stratified Wilson
// interval on the SDC share, and whether it meets cfg.TargetCI at
// cfg.Confidence. The decision depends only on the tally's strata and the
// selection-derived weights, both pure functions of (seed, completed-shard
// prefix) — which is what makes in-process and distributed runs stop at the
// identical shard.
func AdaptiveDecision(t *Tally, weights []StratumWeight, cfg TransientCampaignConfig) (halfWidth float64, converged bool) {
	cfg = cfg.withDefaults()
	if t == nil || t.N == 0 {
		return math.Inf(1), false
	}
	iv, err := AdaptivePooled(t, weights).ShareCI("SDC", cfg.Confidence)
	if err != nil {
		return math.Inf(1), false
	}
	hw := (iv.Hi - iv.Lo) / 2
	return hw, hw <= cfg.TargetCI
}

// AdaptiveResult describes an adaptive campaign's stopping decision.
type AdaptiveResult struct {
	// TargetCI, Confidence, and MaxInjections echo the defaults-applied
	// config the decision ran under.
	TargetCI      float64
	Confidence    float64
	MaxInjections int
	// Converged reports whether the stopping rule fired before the budget
	// ran out; StopShard is the last shard that ran (the stopping shard when
	// converged, the final shard otherwise).
	Converged bool
	StopShard int
	// AchievedCI is the stratified Wilson half-width on the SDC share over
	// the shards that ran.
	AchievedCI float64
	// Strata is the full-selection stratum composition the estimator pooled
	// against.
	Strata []StratumWeight
}

// runAdaptiveCampaign is the in-process adaptive loop: run shards in order,
// evaluate the stopping rule at each boundary on the accumulated tally, and
// stop at the first shard where the pooled estimate converges.
func runAdaptiveCampaign(ctx context.Context, plan *ShardPlan) (*CampaignResult, error) {
	cfg := plan.cfg
	var all []RunResult
	var allErrs []error
	acc := NewTally()
	converged := false
	achieved := math.Inf(1)
	last := -1
	for s := 0; s < cfg.NumShards(); s++ {
		params, err := SelectShard(plan.profile, cfg, s)
		if err != nil {
			return nil, err
		}
		results, errs := plan.runRange(ctx, params)
		all = append(all, results...)
		allErrs = append(allErrs, errs...)
		if err := errors.Join(errs...); err != nil {
			res := summarize(plan.w.Name(), plan.golden, filterOK(all, allErrs), nil)
			res.Translated = !cfg.NoXlate
			return res, err
		}
		last = s
		acc.Merge(TallyRuns(results))
		achieved, converged = AdaptiveDecision(acc, plan.weights, cfg)
		if converged {
			break
		}
	}
	res := summarize(plan.w.Name(), plan.golden, all, nil)
	res.Translated = !cfg.NoXlate
	res.Adaptive = &AdaptiveResult{
		TargetCI:      cfg.TargetCI,
		Confidence:    cfg.Confidence,
		MaxInjections: cfg.MaxInjections,
		Converged:     converged,
		StopShard:     last,
		AchievedCI:    achieved,
		Strata:        plan.weights,
	}
	return res, nil
}
