package campaign_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/sass"
	"repro/internal/specaccel"
)

// TestCampaignDeterminism: the same seed reproduces an identical tally,
// run by run.
func TestCampaignDeterminism(t *testing.T) {
	w, err := specaccel.ByName("314.omriq")
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	cfg := campaign.TransientCampaignConfig{Injections: 12, Seed: 99}
	a, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		if a.Runs[i].Class != b.Runs[i].Class || a.Runs[i].Injection != b.Runs[i].Injection {
			t.Fatalf("run %d differs between identical campaigns", i)
		}
	}
}

// TestCampaignParallelEquivalence: running experiments concurrently must
// not change any outcome (each experiment has its own device).
func TestCampaignParallelEquivalence(t *testing.T) {
	w, err := specaccel.ByName("314.omriq")
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile,
		campaign.TransientCampaignConfig{Injections: 10, Seed: 5, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile,
		campaign.TransientCampaignConfig{Injections: 10, Seed: 5, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Runs {
		if seq.Runs[i].Class != par.Runs[i].Class {
			t.Fatalf("run %d: sequential %v vs parallel %v",
				i, seq.Runs[i].Class, par.Runs[i].Class)
		}
	}
}

// TestDeviceWorkersEquivalence: running each experiment's thread blocks
// across parallel device workers must not change the golden output, the
// launch statistics, or any injection outcome relative to the sequential
// per-device schedule. Injection runs themselves are instrumented (and thus
// forced sequential), so this primarily exercises golden and profiling
// launches plus the campaign plumbing of Runner.Workers.
func TestDeviceWorkersEquivalence(t *testing.T) {
	w, err := specaccel.ByName("314.omriq")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (*campaign.GoldenResult, *campaign.CampaignResult) {
		t.Helper()
		r := campaign.Runner{Workers: workers}
		golden, err := r.Golden(w)
		if err != nil {
			t.Fatal(err)
		}
		profile, _, err := r.Profile(w, core.Exact)
		if err != nil {
			t.Fatal(err)
		}
		res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile,
			campaign.TransientCampaignConfig{Injections: 10, Seed: 5, Parallel: 2})
		if err != nil {
			t.Fatal(err)
		}
		return golden, res
	}
	seqGolden, seq := run(1)
	parGolden, par := run(4)
	if seqGolden.Output.Stdout != parGolden.Output.Stdout {
		t.Fatalf("golden stdout differs between Workers=1 and Workers=4")
	}
	if seqGolden.Stats != parGolden.Stats {
		t.Fatalf("golden stats: Workers=4 %+v, Workers=1 %+v", parGolden.Stats, seqGolden.Stats)
	}
	for i := range seq.Runs {
		if seq.Runs[i].Class != par.Runs[i].Class || seq.Runs[i].Injection != par.Runs[i].Injection {
			t.Fatalf("run %d: Workers=4 %+v vs Workers=1 %+v", i, par.Runs[i], seq.Runs[i])
		}
	}
	if !reflect.DeepEqual(seq.Tally, par.Tally) {
		t.Fatalf("tally: Workers=4 %+v, Workers=1 %+v", par.Tally, seq.Tally)
	}
}

// TestCampaignPartialResult: when every experiment fails with an
// infrastructure error, the campaign must return the joined error together
// with a partial (zero-run) result rather than discarding the summary.
func TestCampaignPartialResult(t *testing.T) {
	w, err := specaccel.ByName("314.omriq")
	if err != nil {
		t.Fatal(err)
	}
	good := campaign.Runner{}
	golden, err := good.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := good.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	// NumSMs < 0 survives default-filling and makes every device
	// construction — hence every experiment — fail.
	broken := campaign.Runner{NumSMs: -1}
	res, err := campaign.RunTransientCampaign(context.Background(), broken, w, golden, profile,
		campaign.TransientCampaignConfig{Injections: 4, Seed: 7})
	if err == nil {
		t.Fatal("campaign with a broken runner reported no error")
	}
	if res == nil {
		t.Fatal("campaign error did not come with a partial result")
	}
	if res.Tally.N != 0 {
		t.Fatalf("partial tally counted %d runs, want 0", res.Tally.N)
	}
}

// TestGoldenRejectsFaultyWorkload: a workload that fails fault-free cannot
// anchor a campaign.
func TestGoldenRejectsFaultyWorkload(t *testing.T) {
	r := campaign.Runner{}
	if _, err := r.Golden(&brokenWorkload{}); err == nil {
		t.Fatal("golden accepted a failing workload")
	}
}

type brokenWorkload struct{}

func (b *brokenWorkload) Name() string        { return "broken" }
func (b *brokenWorkload) Description() string { return "fails fault-free" }
func (b *brokenWorkload) Run(*cuda.Context) (*campaign.Output, error) {
	o := campaign.NewOutput()
	o.ExitCode = 7
	return o, nil
}
func (b *brokenWorkload) Check(_, _ *campaign.Output) bool { return true }

// TestPermanentCampaignWeighting: outcome weights follow the profile's
// per-opcode dynamic-instruction counts.
func TestPermanentCampaignWeighting(t *testing.T) {
	w, err := specaccel.ByName("314.omriq")
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.RunPermanentCampaign(context.Background(), r, w, golden, profile, core.RandomValue, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	var profTotal uint64
	for _, c := range profile.OpcodeTotals() {
		profTotal += c
	}
	if got := uint64(res.Weighted.Total()); got != profTotal {
		t.Fatalf("weighted total = %d, profile total = %d", got, profTotal)
	}
	// Shares sum to 1.
	sum := 0.0
	for _, cat := range res.Weighted.Categories() {
		sum += res.Weighted.Share(cat)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weighted shares sum to %v", sum)
	}
}

// TestHangInjectionClassifiedAsTimeout: a fault that creates an infinite
// loop is caught by the budget monitor and classified DUE/timeout.
func TestHangInjectionClassifiedAsTimeout(t *testing.T) {
	w, err := specaccel.ByName("303.ostencil")
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.Runner{BudgetFactor: 3}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep seeded ZERO_VALUE faults on predicate registers — loop-exit
	// predicates zeroed out are the classic hang — until one times out.
	found := false
	cfg := campaign.TransientCampaignConfig{
		Injections: 60, Seed: 1234,
		Group:   sass.GroupGP,
		BitFlip: core.RandomValue,
	}
	res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range res.Runs {
		if run.Class.Symptom == campaign.SymptomTimeout {
			found = true
		}
	}
	if !found {
		t.Skip("no hang among 60 sampled faults on this program (possible but rare)")
	}
}
