package campaign_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/report"
)

// runEngines runs the same campaign config on the translation engine and on
// the legacy interpreter (same seed, same golden, same profile) and returns
// the two results for comparison.
func runEngines(t *testing.T, cfg campaign.TransientCampaignConfig) (xlated, interp *campaign.CampaignResult) {
	t.Helper()
	w := deadWorkload{}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	return runEnginesWith(t, r, w, golden, profile, cfg)
}

// runEnginesWith runs cfg twice — translated and interpreted — against the
// same golden reference and profile.
func runEnginesWith(t *testing.T, r campaign.Runner, w campaign.Workload, golden *campaign.GoldenResult,
	profile *core.Profile, cfg campaign.TransientCampaignConfig) (xlated, interp *campaign.CampaignResult) {
	t.Helper()
	xlated, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	off := cfg
	off.NoXlate = true
	interp, err = campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, off)
	if err != nil {
		t.Fatal(err)
	}
	return xlated, interp
}

// expectIdenticalCampaigns asserts two campaigns are experiment-for-
// experiment identical: classification, injection record, and stats of every
// run, plus the aggregate tally.
func expectIdenticalCampaigns(t *testing.T, label string, xlated, interp *campaign.CampaignResult) {
	t.Helper()
	if len(xlated.Runs) != len(interp.Runs) {
		t.Fatalf("%s: run counts differ: translated %d, interpreted %d", label, len(xlated.Runs), len(interp.Runs))
	}
	for i := range xlated.Runs {
		x, n := &xlated.Runs[i], &interp.Runs[i]
		if x.Class != n.Class {
			t.Fatalf("%s run %d: translated %v, interpreted %v", label, i, x.Class, n.Class)
		}
		if x.Injection != n.Injection {
			t.Fatalf("%s run %d: injection records differ:\ntranslated  %+v\ninterpreted %+v",
				label, i, x.Injection, n.Injection)
		}
		if x.Stats != n.Stats {
			t.Fatalf("%s run %d: stats differ: translated %+v, interpreted %+v", label, i, x.Stats, n.Stats)
		}
		if x.Pruned != n.Pruned || x.Restored != n.Restored || x.EarlyExit != n.EarlyExit {
			t.Fatalf("%s run %d: engine flags differ (pruned %v/%v restored %v/%v early %v/%v)",
				label, i, x.Pruned, n.Pruned, x.Restored, n.Restored, x.EarlyExit, n.EarlyExit)
		}
	}
	if !reflect.DeepEqual(xlated.Tally, interp.Tally) {
		t.Fatalf("%s: tallies differ:\ntranslated  %v\ninterpreted %v", label, xlated.Tally, interp.Tally)
	}
	if !xlated.Translated {
		t.Errorf("%s: translated campaign not marked Translated", label)
	}
	if interp.Translated {
		t.Errorf("%s: interpreted campaign marked Translated", label)
	}
}

// TestXlateCampaignDifferential is the engine soundness proof the design
// demands: a 200-injection campaign on the translation engine must be
// experiment-for-experiment identical — classifications, injection records,
// per-run LaunchStats, tallies — to the interpreter with the same seed.
func TestXlateCampaignDifferential(t *testing.T) {
	xlated, interp := runEngines(t, campaign.TransientCampaignConfig{Injections: 200, Seed: 77})
	expectIdenticalCampaigns(t, "plain", xlated, interp)
	if s := report.Summary(xlated); !strings.Contains(s, "[translated]") {
		t.Errorf("summary does not mark the engine: %q", s)
	}
	if s := report.Summary(interp); !strings.Contains(s, "[interpreted]") {
		t.Errorf("summary does not mark the interpreter: %q", s)
	}
}

// TestXlateCampaignDifferentialPruned composes translation with static
// pruning: prune decisions and every executed experiment must match across
// engines.
func TestXlateCampaignDifferentialPruned(t *testing.T) {
	xlated, interp := runEngines(t, campaign.TransientCampaignConfig{Injections: 100, Seed: 78, Prune: true})
	expectIdenticalCampaigns(t, "pruned", xlated, interp)
	if xlated.Tally.Pruned == 0 {
		t.Error("pruned campaign over the dead-write kernel pruned nothing")
	}
}

// TestXlateCampaignDifferentialCheckpointed composes translation with the
// checkpoint-and-fork engine: restored prefixes, early exits, and final
// classifications must match across engines.
func TestXlateCampaignDifferentialCheckpointed(t *testing.T) {
	r, golden, profile := iterCampaignInputs(t)
	xlated, interp := runEnginesWith(t, r, iterWorkload{}, golden, profile,
		campaign.TransientCampaignConfig{Injections: 60, Seed: 79, Checkpoint: true})
	expectIdenticalCampaigns(t, "checkpointed", xlated, interp)
	if xlated.Tally.Restored == 0 {
		t.Error("checkpointed campaign restored nothing")
	}
}
