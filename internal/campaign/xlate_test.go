package campaign_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/report"
)

// runEngines runs the same campaign config on the translation engine and on
// the legacy interpreter (same seed, same golden, same profile) and returns
// the two results for comparison.
func runEngines(t *testing.T, cfg campaign.TransientCampaignConfig) (xlated, interp *campaign.CampaignResult) {
	t.Helper()
	w := deadWorkload{}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	return runEnginesWith(t, r, w, golden, profile, cfg)
}

// runEnginesWith runs cfg twice — translated and interpreted — against the
// same golden reference and profile.
func runEnginesWith(t *testing.T, r campaign.Runner, w campaign.Workload, golden *campaign.GoldenResult,
	profile *core.Profile, cfg campaign.TransientCampaignConfig) (xlated, interp *campaign.CampaignResult) {
	t.Helper()
	xlated, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	off := cfg
	off.NoXlate = true
	interp, err = campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, off)
	if err != nil {
		t.Fatal(err)
	}
	return xlated, interp
}

// expectIdenticalCampaigns asserts two campaigns are experiment-for-
// experiment identical: classification, injection record, and stats of every
// run, plus the aggregate tally.
func expectIdenticalCampaigns(t *testing.T, label string, xlated, interp *campaign.CampaignResult) {
	t.Helper()
	expectIdenticalRuns(t, label, xlated, interp, "translated", "interpreted")
	if !xlated.Translated {
		t.Errorf("%s: translated campaign not marked Translated", label)
	}
	if interp.Translated {
		t.Errorf("%s: interpreted campaign marked Translated", label)
	}
}

// expectIdenticalRuns is the engine-agnostic core of the campaign
// differential: every run and the aggregate tally must match between two
// campaigns, whatever pair of configurations produced them.
func expectIdenticalRuns(t *testing.T, label string, xlated, interp *campaign.CampaignResult, xname, iname string) {
	t.Helper()
	if len(xlated.Runs) != len(interp.Runs) {
		t.Fatalf("%s: run counts differ: translated %d, interpreted %d", label, len(xlated.Runs), len(interp.Runs))
	}
	for i := range xlated.Runs {
		x, n := &xlated.Runs[i], &interp.Runs[i]
		if x.Class != n.Class {
			t.Fatalf("%s run %d: %s %v, %s %v", label, i, xname, x.Class, iname, n.Class)
		}
		if x.Injection != n.Injection {
			t.Fatalf("%s run %d: injection records differ:\n%s  %+v\n%s %+v",
				label, i, xname, x.Injection, iname, n.Injection)
		}
		if x.Stats != n.Stats {
			t.Fatalf("%s run %d: stats differ: %s %+v, %s %+v", label, i, xname, x.Stats, iname, n.Stats)
		}
		if x.Pruned != n.Pruned || x.Restored != n.Restored || x.EarlyExit != n.EarlyExit {
			t.Fatalf("%s run %d: engine flags differ (pruned %v/%v restored %v/%v early %v/%v)",
				label, i, x.Pruned, n.Pruned, x.Restored, n.Restored, x.EarlyExit, n.EarlyExit)
		}
	}
	if !reflect.DeepEqual(xlated.Tally, interp.Tally) {
		t.Fatalf("%s: tallies differ:\n%s  %v\n%s %v", label, xname, xlated.Tally, iname, interp.Tally)
	}
}

// TestXlateCampaignDifferential is the engine soundness proof the design
// demands: a 200-injection campaign on the translation engine must be
// experiment-for-experiment identical — classifications, injection records,
// per-run LaunchStats, tallies — to the interpreter with the same seed.
func TestXlateCampaignDifferential(t *testing.T) {
	xlated, interp := runEngines(t, campaign.TransientCampaignConfig{Injections: 200, Seed: 77})
	expectIdenticalCampaigns(t, "plain", xlated, interp)
	if s := report.Summary(xlated); !strings.Contains(s, "[translated]") {
		t.Errorf("summary does not mark the engine: %q", s)
	}
	if s := report.Summary(interp); !strings.Contains(s, "[interpreted]") {
		t.Errorf("summary does not mark the interpreter: %q", s)
	}
}

// TestSchedulerCampaignDifferential is the campaign-level scheduler gate:
// the same 200-injection campaign run on the warp-split scheduler and on
// the legacy min-PC scan (both translated) must be experiment-for-
// experiment identical. With the NVBITFI_LEGACY_SCHED environment variable
// set, CI additionally runs the engine differentials above with the scan
// as the oracle side, covering the interpreted x scheduler matrix.
func TestSchedulerCampaignDifferential(t *testing.T) {
	w := deadWorkload{}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	cfg := campaign.TransientCampaignConfig{Injections: 200, Seed: 77}
	split, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	legacy := r
	legacy.LegacySched = true
	scan, err := campaign.RunTransientCampaign(context.Background(), legacy, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	expectIdenticalRuns(t, "scheduler", split, scan, "warp-split", "legacy-scan")
	if !split.Translated || !scan.Translated {
		t.Error("scheduler differential must compare two translated campaigns")
	}
}

// TestXlateCampaignDifferentialPruned composes translation with static
// pruning: prune decisions and every executed experiment must match across
// engines.
func TestXlateCampaignDifferentialPruned(t *testing.T) {
	xlated, interp := runEngines(t, campaign.TransientCampaignConfig{Injections: 100, Seed: 78, Prune: true})
	expectIdenticalCampaigns(t, "pruned", xlated, interp)
	if xlated.Tally.Pruned == 0 {
		t.Error("pruned campaign over the dead-write kernel pruned nothing")
	}
}

// TestXlateCampaignDifferentialCheckpointed composes translation with the
// checkpoint-and-fork engine: restored prefixes, early exits, and final
// classifications must match across engines.
func TestXlateCampaignDifferentialCheckpointed(t *testing.T) {
	r, golden, profile := iterCampaignInputs(t)
	xlated, interp := runEnginesWith(t, r, iterWorkload{}, golden, profile,
		campaign.TransientCampaignConfig{Injections: 60, Seed: 79, Checkpoint: true})
	expectIdenticalCampaigns(t, "checkpointed", xlated, interp)
	if xlated.Tally.Restored == 0 {
		t.Error("checkpointed campaign restored nothing")
	}
}
