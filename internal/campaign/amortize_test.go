package campaign_test

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/modcache"
	"repro/internal/sass"
	"repro/internal/specaccel"
)

// setupCampaign runs golden + exact profile for the named program.
func setupCampaign(t *testing.T, r campaign.Runner, name string) (campaign.Workload, *campaign.GoldenResult, *core.Profile) {
	t.Helper()
	w, err := specaccel.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	return w, golden, profile
}

// expectSameCampaign compares two campaigns experiment by experiment:
// classification, injection record, and accumulated LaunchStats (which
// include the trampoline accounting) must be identical. Durations are
// wall-clock and excluded.
func expectSameCampaign(t *testing.T, label string, ref, got *campaign.CampaignResult) {
	t.Helper()
	if len(ref.Runs) != len(got.Runs) {
		t.Fatalf("%s: %d runs vs %d", label, len(got.Runs), len(ref.Runs))
	}
	for i := range ref.Runs {
		if ref.Runs[i].Class != got.Runs[i].Class {
			t.Errorf("%s: run %d classified %v, want %v", label, i, got.Runs[i].Class, ref.Runs[i].Class)
		}
		if ref.Runs[i].Injection != got.Runs[i].Injection {
			t.Errorf("%s: run %d injection\n%+v\nwant\n%+v", label, i, got.Runs[i].Injection, ref.Runs[i].Injection)
		}
		if ref.Runs[i].Stats != got.Runs[i].Stats {
			t.Errorf("%s: run %d stats %+v, want %+v", label, i, got.Runs[i].Stats, ref.Runs[i].Stats)
		}
	}
	if !reflect.DeepEqual(ref.Tally, got.Tally) {
		t.Errorf("%s: tally %+v, want %+v", label, got.Tally, ref.Tally)
	}
}

// TestLegacyPathCampaignEquivalence: campaigns on the optimized engine
// (arithmetic trampoline accounting, post-activation disarm) must produce
// classifications, injection records, stats, and tallies identical to the
// legacy slow paths, experiment by experiment.
func TestLegacyPathCampaignEquivalence(t *testing.T) {
	cfg := campaign.TransientCampaignConfig{Injections: 20, Seed: 11}
	base := campaign.Runner{}
	w, golden, profile := setupCampaign(t, base, "303.ostencil")
	ref, err := campaign.RunTransientCampaign(context.Background(), base, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	activated := 0
	for _, run := range ref.Runs {
		if run.Injection.Activated {
			activated++
		}
	}
	if activated == 0 {
		t.Fatal("no fault activated; the differential would be vacuous")
	}

	variants := []struct {
		name string
		r    campaign.Runner
	}{
		{"armed (DisableDisarm)", campaign.Runner{DisableDisarm: true}},
		{"interpreted trampolines", campaign.Runner{InterpretTrampolines: true}},
		{"both legacy paths", campaign.Runner{DisableDisarm: true, InterpretTrampolines: true}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			got, err := campaign.RunTransientCampaign(context.Background(), v.r, w, golden, profile, cfg)
			if err != nil {
				t.Fatal(err)
			}
			expectSameCampaign(t, v.name, ref, got)
		})
	}
}

// TestWarmColdExperimentEquivalence: an experiment that builds every
// module cold (empty cache) and one served entirely from the warm cache
// must classify identically with identical stats — and the warm run must
// actually hit the cache.
func TestWarmColdExperimentEquivalence(t *testing.T) {
	r := campaign.Runner{}
	w, golden, profile := setupCampaign(t, r, "314.omriq")
	p, err := core.SelectTransientFault(profile, sass.GroupGPPR, core.FlipSingleBit,
		rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}

	modcache.Shared.Reset()
	before := modcache.Shared.Stats()
	cold, err := r.RunTransient(context.Background(), w, golden, *p)
	if err != nil {
		t.Fatal(err)
	}
	afterCold := modcache.Shared.Stats()
	if afterCold.AssembleBuilds == before.AssembleBuilds {
		t.Error("cold experiment built nothing; Reset did not empty the cache")
	}

	warm, err := r.RunTransient(context.Background(), w, golden, *p)
	if err != nil {
		t.Fatal(err)
	}
	afterWarm := modcache.Shared.Stats()
	if afterWarm.AssembleBuilds != afterCold.AssembleBuilds || afterWarm.DecodeBuilds != afterCold.DecodeBuilds {
		t.Errorf("warm experiment rebuilt modules: %+v -> %+v", afterCold, afterWarm)
	}
	if afterWarm.AssembleHits == afterCold.AssembleHits {
		t.Error("warm experiment never hit the assemble cache")
	}

	if cold.Class != warm.Class {
		t.Errorf("cold classified %v, warm %v", cold.Class, warm.Class)
	}
	if cold.Injection != warm.Injection {
		t.Errorf("injection records differ:\ncold %+v\nwarm %+v", cold.Injection, warm.Injection)
	}
	if cold.Stats != warm.Stats {
		t.Errorf("stats differ: cold %+v, warm %+v", cold.Stats, warm.Stats)
	}
}

// TestSharedKernelImmutabilityRace: concurrent experiments alias the same
// cached module state. Under -race this test proves no experiment writes
// it: the decoded kernels' contents must be bit-identical to pre-campaign
// clones afterwards. Guards the aliasing the module cache introduced.
func TestSharedKernelImmutabilityRace(t *testing.T) {
	r := campaign.Runner{}
	w, golden, profile := setupCampaign(t, r, "314.omriq")

	// Load the workload's modules on a scratch context to reach the shared
	// assembled and decoded kernel views.
	dev, err := gpu.NewDevice(sass.FamilyVolta, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := cuda.NewContext(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	var shared []*sass.Kernel
	for _, m := range ctx.Modules() {
		shared = append(shared, m.Kernels()...)
		decoded, _, err := modcache.Shared.Decode(m.Family(), m.Binary())
		if err != nil {
			t.Fatal(err)
		}
		shared = append(shared, decoded.Kernels...)
	}
	if len(shared) == 0 {
		t.Fatal("workload loaded no kernels")
	}
	snaps := make([]*sass.Kernel, len(shared))
	for i, k := range shared {
		snaps[i] = k.Clone()
	}

	if _, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile,
		campaign.TransientCampaignConfig{Injections: 16, Seed: 3, Parallel: 8}); err != nil {
		t.Fatal(err)
	}

	for i, k := range shared {
		if !reflect.DeepEqual(k.Instrs, snaps[i].Instrs) {
			t.Errorf("kernel %q: shared instructions mutated by the campaign", k.Name)
		}
		if k.Name != snaps[i].Name || !reflect.DeepEqual(k.Params, snaps[i].Params) ||
			k.SharedBytes != snaps[i].SharedBytes {
			t.Errorf("kernel %q: shared metadata mutated by the campaign", k.Name)
		}
	}
}

const spinSrc = `
.kernel spin
spin:
    BRA spin
`

// spinWorkload never terminates: the Golden safety-budget test target.
type spinWorkload struct{}

func (spinWorkload) Name() string                     { return "spin" }
func (spinWorkload) Description() string              { return "loops forever" }
func (spinWorkload) Check(_, _ *campaign.Output) bool { return true }

func (spinWorkload) Run(ctx *cuda.Context) (*campaign.Output, error) {
	m, err := ctx.LoadModule("spin", spinSrc)
	if err != nil {
		return nil, err
	}
	f, err := m.Function("spin")
	if err != nil {
		return nil, err
	}
	_ = ctx.Launch(f, cuda.LaunchConfig{
		Grid:  gpu.Dim3{X: 1, Y: 1, Z: 1},
		Block: gpu.Dim3{X: 32, Y: 1, Z: 1},
	})
	out := campaign.NewOutput()
	if ctx.LastError() != cuda.Success {
		out.ExitCode = 1
	}
	return out, nil
}

// TestGoldenSafetyBudget: a non-terminating workload must trap with
// TrapInstrLimit under the golden safety budget instead of hanging the
// campaign before any workload-derived budget exists. (A small explicit
// budget keeps the test fast; by default applyDefaults installs
// DefaultGoldenBudget, the same mechanism with a larger cap.)
func TestGoldenSafetyBudget(t *testing.T) {
	r := campaign.Runner{GoldenBudget: 50_000}
	_, err := r.Golden(spinWorkload{})
	if err == nil {
		t.Fatal("golden run of a non-terminating workload returned no error")
	}
	if !strings.Contains(err.Error(), "CUDA_ERROR_LAUNCH_TIMEOUT") {
		t.Fatalf("golden run failed with %v, want the LAUNCH_TIMEOUT sticky error", err)
	}
}
