package campaign_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
)

// adaptiveFixture runs golden+profile once for the class-heavy workload.
func adaptiveFixture(tb testing.TB) (campaign.Runner, campaign.Workload, *campaign.GoldenResult, *core.Profile) {
	tb.Helper()
	w := classWorkload{}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		tb.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		tb.Fatal(err)
	}
	return r, w, golden, profile
}

// TestAdaptiveFullRunMatchesExhaustive is the estimator's exactness proof: on
// a run that never converges (unreachably tight target), the campaign
// consumes its whole budget, and the stratified pooled share must equal the
// exhaustive unstratified tally fraction bit for bit — post-stratification
// reweights by realized counts, so full sampling collapses every expansion
// factor to exactly one. The runs themselves must match a plain fixed-count
// campaign on the same seed, classification for classification.
func TestAdaptiveFullRunMatchesExhaustive(t *testing.T) {
	r, w, golden, profile := adaptiveFixture(t)
	fixed := campaign.TransientCampaignConfig{Injections: 150, Seed: 17, ResolveSites: true}
	plain, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, fixed)
	if err != nil {
		t.Fatal(err)
	}
	adaptiveCfg := fixed
	adaptiveCfg.TargetCI = 1e-9 // unreachable: forces the full budget
	res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, adaptiveCfg)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Adaptive
	if a == nil {
		t.Fatal("adaptive campaign returned no Adaptive block")
	}
	if a.Converged {
		t.Fatalf("campaign converged at shard %d against a 1e-9 target", a.StopShard)
	}
	if want := fixed.NumShards() - 1; a.StopShard != want {
		t.Fatalf("non-converged campaign stopped at shard %d, want final shard %d", a.StopShard, want)
	}
	if res.Tally.N != plain.Tally.N {
		t.Fatalf("adaptive full run N=%d, fixed N=%d", res.Tally.N, plain.Tally.N)
	}
	for i := range res.Runs {
		if res.Runs[i].Class != plain.Runs[i].Class {
			t.Fatalf("run %d classified %v adaptive vs %v fixed", i, res.Runs[i].Class, plain.Runs[i].Class)
		}
	}
	pooled := campaign.AdaptivePooled(res.Tally, a.Strata)
	for _, cat := range []struct {
		name string
		o    campaign.Outcome
	}{{"SDC", campaign.SDC}, {"DUE", campaign.DUE}, {"Masked", campaign.Masked}} {
		got := pooled.Share(cat.name)
		if want := res.Tally.Fraction(cat.o); got != want {
			t.Errorf("%s pooled share %v != exhaustive fraction %v", cat.name, got, want)
		}
	}
	// The design-effect interval must bracket the estimate and beat (or
	// match) simple random sampling on this certain-strata-heavy workload.
	iv, err := pooled.ShareCI("SDC", campaign.DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > iv.P || iv.P > iv.Hi {
		t.Errorf("SDC interval %+v does not bracket its estimate", iv)
	}
	srs, err := stats.ProportionCI(res.Tally.Counts[campaign.SDC], res.Tally.N, campaign.DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if (iv.Hi - iv.Lo) > (srs.Hi-srs.Lo)+1e-12 {
		t.Errorf("stratified interval %+v wider than SRS %+v", iv, srs)
	}
}

// TestAdaptiveEarlyStopDeterministic: a realistic target on the class-heavy
// workload converges well inside the budget, and two identical runs stop at
// the identical shard with byte-identical tallies — the stopping rule is a
// pure function of (seed, completed-shard prefix).
func TestAdaptiveEarlyStopDeterministic(t *testing.T) {
	r, w, golden, profile := adaptiveFixture(t)
	budget, err := stats.RequiredSamples(0.02, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	cfg := campaign.TransientCampaignConfig{Injections: budget, Seed: 31, TargetCI: 0.02}
	first, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := first.Adaptive
	if a == nil || !a.Converged {
		t.Fatalf("campaign did not converge within %d experiments: %+v", budget, a)
	}
	if a.AchievedCI > cfg.TargetCI {
		t.Errorf("converged with achieved half-width %v above target %v", a.AchievedCI, cfg.TargetCI)
	}
	if first.Tally.N >= budget {
		t.Errorf("converged campaign still ran the whole %d budget", budget)
	}
	second, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Adaptive.StopShard != a.StopShard {
		t.Fatalf("stop shard differs across identical runs: %d vs %d", second.Adaptive.StopShard, a.StopShard)
	}
	tj1, err := json.Marshal(first.Tally)
	if err != nil {
		t.Fatal(err)
	}
	tj2, err := json.Marshal(second.Tally)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tj1, tj2) {
		t.Fatalf("tallies diverge across identical adaptive runs:\n%s\n%s", tj1, tj2)
	}
	t.Logf("converged at shard %d: %d of %d selected, achieved ±%.4f", a.StopShard, first.Tally.N, budget, a.AchievedCI)
}

// TestAdaptiveSavings holds the engine to the issue's headline: reaching a
// ±2% 95% interval on the SDC share must cost at least 3x fewer executed
// experiments than the fixed budget sized for the same guarantee. A
// fixed-count campaign executes its entire selection by construction, so the
// baseline is the budget itself.
func TestAdaptiveSavings(t *testing.T) {
	r, w, golden, profile := adaptiveFixture(t)
	budget, err := stats.RequiredSamples(0.02, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	cfg := campaign.TransientCampaignConfig{Injections: budget, Seed: 31, TargetCI: 0.02}
	res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Adaptive.Converged {
		t.Fatalf("campaign did not converge within the %d budget", budget)
	}
	executed := res.Tally.N - res.Tally.Pruned - res.Tally.ClassAnswered
	if 3*executed > budget {
		t.Fatalf("adaptive campaign executed %d experiments; want at least 3x under the %d fixed budget", executed, budget)
	}
	t.Logf("adaptive executed %d vs fixed %d (%.1fx fewer)", executed, budget, float64(budget)/float64(executed))
}

// TestAdaptiveComposesWithClassSampling: pruning and class-representative
// answering stack in front of the stopping rule, shrinking executed
// experiments further without disturbing the estimator (answered members
// still tally into their strata).
func TestAdaptiveComposesWithClassSampling(t *testing.T) {
	r, w, golden, profile := adaptiveFixture(t)
	budget, err := stats.RequiredSamples(0.02, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	cfg := campaign.TransientCampaignConfig{Injections: budget, Seed: 31, TargetCI: 0.02, Classes: true, Prune: true}
	res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Adaptive.Converged {
		t.Fatalf("classed adaptive campaign did not converge within %d", budget)
	}
	executed := res.Tally.N - res.Tally.Pruned - res.Tally.ClassAnswered
	if executed >= res.Tally.N {
		t.Errorf("class sampling answered nothing under the adaptive engine: %+v", res.Tally)
	}
	// The summary must surface the statistical block.
	sum := report.Summary(res)
	if !strings.Contains(sum, "converged at shard") {
		t.Errorf("summary does not surface convergence: %q", sum)
	}
	var buf bytes.Buffer
	if err := report.WriteSummaryJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"statistical"`, `"target_ci"`, `"strata"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("summary JSON missing %s: %s", key, buf.String())
		}
	}
	t.Logf("classed adaptive: executed %d of %d selected (budget %d)", executed, res.Tally.N, budget)
}

// TestAdaptiveOffByteIdentity: with TargetCI zero, no adaptive field may
// leak into any output surface — config, tally, summary JSON, or run log —
// so fixed-count campaigns stay byte-identical to builds predating the
// adaptive engine.
func TestAdaptiveOffByteIdentity(t *testing.T) {
	r, w, golden, profile := adaptiveFixture(t)
	cfg := campaign.TransientCampaignConfig{Injections: 50, Seed: 3, ResolveSites: true, Prune: true}
	cj, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"TargetCI", "Confidence", "MaxInjections"} {
		if strings.Contains(string(cj), key) {
			t.Errorf("fixed-count config JSON leaks %s: %s", key, cj)
		}
	}
	res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive != nil {
		t.Error("fixed-count campaign carries an Adaptive block")
	}
	tj, err := json.Marshal(res.Tally)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(tj), `"strata"`) {
		t.Errorf("fixed-count tally JSON leaks strata: %s", tj)
	}
	var sj bytes.Buffer
	if err := report.WriteSummaryJSON(&sj, res); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sj.String(), `"statistical"`) {
		t.Errorf("fixed-count summary JSON leaks the statistical block: %s", sj.String())
	}
}

// benchAdaptiveCampaign reports how many experiments a ±2%/95% campaign
// executes with the adaptive engine on versus the fixed budget sized for the
// same guarantee; BENCH_campaign.json tracks the ratio.
func benchAdaptiveCampaign(b *testing.B, adaptive bool) {
	r, w, golden, profile := adaptiveFixture(b)
	budget, err := stats.RequiredSamples(0.02, 0.95)
	if err != nil {
		b.Fatal(err)
	}
	cfg := campaign.TransientCampaignConfig{Injections: budget, Seed: 31, TimingFidelity: true}
	if adaptive {
		cfg.TargetCI = 0.02
	}
	b.ResetTimer()
	var executed int
	for i := 0; i < b.N; i++ {
		res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
		if err != nil {
			b.Fatal(err)
		}
		executed = res.Tally.N - res.Tally.Pruned - res.Tally.ClassAnswered
		if adaptive && 3*executed > budget {
			b.Fatalf("adaptive campaign executed %d of the %d budget, want at least 3x fewer", executed, budget)
		}
	}
	b.ReportMetric(float64(executed), "experiments/op")
}

func BenchmarkTransientCampaignAdaptive(b *testing.B)    { benchAdaptiveCampaign(b, true) }
func BenchmarkTransientCampaignFixedBudget(b *testing.B) { benchAdaptiveCampaign(b, false) }
