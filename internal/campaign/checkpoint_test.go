package campaign_test

import (
	"context"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/report"
)

// iterSrc is an iterative kernel built so the checkpoint engine has
// something to bite on: each loop iteration recomputes its temporaries from
// the live accumulator R8, and the LOP.AND masks the top 24 bits of R9 —
// so a large share of injections into the XOR's destination are masked and
// the state re-converges with the golden trajectory within one iteration
// (the early-exit case), while accumulator and address corruptions still
// produce SDCs and traps.
const iterSrc = `
.kernel iterk
.param inptr
.param outptr
.param iters
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0           // global thread id
    SHL R3, R0, 0x2
    IADD R10, R3, c0[inptr]
    LDG.32 R8, [R10]              // live accumulator, seeded from input
    MOV R5, c0[iters]             // loop counter
loop:
    IADD R6, R8, 0x5              // fresh temps, recomputed every iteration
    SHL R7, R6, 0x1
    LOP.XOR R9, R7, R8
    LOP.AND R9, R9, 0xff          // masks upper-bit corruption of the XOR
    IADD R8, R9, 0x3
    IADD R5, R5, -0x1
    ISETP.NE.AND P0, R5, 0x0, PT
@P0 BRA loop
    IADD R11, R3, c0[outptr]
    STG.32 [R11], R8
    EXIT
`

const (
	iterThreads  = 64
	iterLaunches = 12
)

// iterWorkload chains iterLaunches launches of iterk with a growing
// iteration count, ping-ponging between two buffers, so the dynamic
// instruction stream is dominated by the later launches: the
// late-injection-heavy shape where re-executing golden prefixes costs the
// most and checkpoint restores save the most.
type iterWorkload struct{}

func (iterWorkload) Name() string { return "iterchain" }
func (iterWorkload) Description() string {
	return "iterative kernel chain, late-instruction-heavy"
}

func (iterWorkload) Run(ctx *cuda.Context) (*campaign.Output, error) {
	out := campaign.NewOutput()
	mod, err := ctx.LoadModule("iter", iterSrc)
	if err != nil {
		return out, err
	}
	fn, err := mod.Function("iterk")
	if err != nil {
		return out, err
	}
	a, err := ctx.Malloc(4 * iterThreads)
	if err != nil {
		return out, err
	}
	b, err := ctx.Malloc(4 * iterThreads)
	if err != nil {
		return out, err
	}
	seed := make([]byte, 4*iterThreads)
	for i := 0; i < iterThreads; i++ {
		binary.LittleEndian.PutUint32(seed[4*i:], uint32(i)*2654435761+12345)
	}
	if err := ctx.MemcpyHtoD(a, seed); err != nil {
		return out, err
	}
	cfg := cuda.LaunchConfig{Grid: gpu.Dim3{X: 1, Y: 1, Z: 1}, Block: gpu.Dim3{X: iterThreads, Y: 1, Z: 1}}
	src, dst := a, b
	for i := 0; i < iterLaunches; i++ {
		// Unchecked-style host code: launch errors surface as stale output.
		_ = ctx.Launch(fn, cfg, src, dst, uint32(4+8*i))
		src, dst = dst, src
	}
	res, err := ctx.MemcpyDtoH(src, 4*iterThreads)
	if err != nil {
		return out, nil
	}
	for i := 0; i+4 <= len(res); i += 4 {
		out.Printf("%08x ", binary.LittleEndian.Uint32(res[i:]))
	}
	return out, nil
}

func (iterWorkload) Check(golden, observed *campaign.Output) bool { return golden.Equal(observed) }

// iterCampaignInputs builds the golden result and site-resolved profile the
// checkpoint tests share.
func iterCampaignInputs(tb testing.TB) (campaign.Runner, *campaign.GoldenResult, *core.Profile) {
	tb.Helper()
	w := iterWorkload{}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		tb.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		tb.Fatal(err)
	}
	return r, golden, profile
}

// TestCheckpointDifferential is the checkpoint soundness proof the design
// demands: a >=200-injection campaign with checkpointed restores and
// early-exit classification must produce byte-identical per-run
// classifications to the from-scratch campaign with the same seed, while
// actually restoring and early-exiting a nonzero number of experiments.
func TestCheckpointDifferential(t *testing.T) {
	w := iterWorkload{}
	r, golden, profile := iterCampaignInputs(t)
	base := campaign.TransientCampaignConfig{Injections: 200, Seed: 31, ResolveSites: true}
	scratch, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, base)
	if err != nil {
		t.Fatal(err)
	}
	withCkpt := base
	withCkpt.Checkpoint = true
	ckpt, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, withCkpt)
	if err != nil {
		t.Fatal(err)
	}

	if ckpt.Tally.Restored == 0 {
		t.Fatal("checkpointed campaign restored nothing")
	}
	if ckpt.Tally.EarlyExits == 0 {
		t.Fatal("checkpointed campaign early-exited nothing")
	}
	if scratch.Tally.Restored != 0 || scratch.Tally.EarlyExits != 0 {
		t.Fatalf("from-scratch campaign reports %d restored, %d early exits",
			scratch.Tally.Restored, scratch.Tally.EarlyExits)
	}
	if ckpt.Tally.N != scratch.Tally.N {
		t.Fatalf("run counts differ: checkpointed %d, from-scratch %d", ckpt.Tally.N, scratch.Tally.N)
	}
	for i := range ckpt.Runs {
		if ckpt.Runs[i].Class != scratch.Runs[i].Class {
			t.Fatalf("run %d classified %+v checkpointed vs %+v from scratch (injection %+v)",
				i, ckpt.Runs[i].Class, scratch.Runs[i].Class, ckpt.Runs[i].Injection)
		}
	}
	for _, o := range []campaign.Outcome{campaign.Masked, campaign.SDC, campaign.DUE} {
		if ckpt.Tally.Counts[o] != scratch.Tally.Counts[o] {
			t.Errorf("%v count: checkpointed %d, from-scratch %d",
				o, ckpt.Tally.Counts[o], scratch.Tally.Counts[o])
		}
	}
	if ckpt.Tally.PotentialDUEs != scratch.Tally.PotentialDUEs {
		t.Errorf("potential DUEs: checkpointed %d, from-scratch %d",
			ckpt.Tally.PotentialDUEs, scratch.Tally.PotentialDUEs)
	}
	if sum := report.Summary(ckpt); !strings.Contains(sum, "restored") {
		t.Errorf("CLI summary does not surface the checkpoint counts: %q", sum)
	}
	t.Logf("restored %d/%d, early-exited %d; tallies %v",
		ckpt.Tally.Restored, ckpt.Tally.N, ckpt.Tally.EarlyExits, ckpt.Tally)
}

// TestCheckpointNoEarlyExit: disabling early exit must not change any
// classification, only force every experiment to run to completion.
func TestCheckpointNoEarlyExit(t *testing.T) {
	w := iterWorkload{}
	r, golden, profile := iterCampaignInputs(t)
	base := campaign.TransientCampaignConfig{Injections: 60, Seed: 7, Checkpoint: true}
	withExit, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, base)
	if err != nil {
		t.Fatal(err)
	}
	noExit := base
	noExit.NoEarlyExit = true
	full, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, noExit)
	if err != nil {
		t.Fatal(err)
	}
	if full.Tally.EarlyExits != 0 {
		t.Fatalf("NoEarlyExit campaign early-exited %d runs", full.Tally.EarlyExits)
	}
	if withExit.Tally.EarlyExits == 0 {
		t.Fatal("early-exit campaign early-exited nothing; the comparison is vacuous")
	}
	if full.Tally.Restored == 0 {
		t.Fatal("NoEarlyExit campaign restored nothing")
	}
	for i := range full.Runs {
		if full.Runs[i].Class != withExit.Runs[i].Class {
			t.Fatalf("run %d classified %+v without early exit vs %+v with",
				i, full.Runs[i].Class, withExit.Runs[i].Class)
		}
	}
}

// TestCheckpointPruneInteraction: pruning and checkpointing compose — the
// pruned sites are classified statically and must not consume checkpoint
// work (no restore, no early exit on a pruned run), and the combined
// campaign still matches the plain same-seed campaign run for run.
func TestCheckpointPruneInteraction(t *testing.T) {
	w := deadWorkload{}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	base := campaign.TransientCampaignConfig{Injections: 200, Seed: 31, ResolveSites: true}
	plain, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, base)
	if err != nil {
		t.Fatal(err)
	}
	both := base
	both.Prune = true
	both.Checkpoint = true
	// The dead-write workload is tiny; force a stride small enough that
	// checkpoints exist at all.
	both.CkptStride = 64
	combined, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, both)
	if err != nil {
		t.Fatal(err)
	}
	if combined.Tally.Pruned == 0 {
		t.Fatal("combined campaign pruned nothing")
	}
	for i := range combined.Runs {
		if combined.Runs[i].Class != plain.Runs[i].Class {
			t.Fatalf("run %d classified %+v combined vs %+v plain",
				i, combined.Runs[i].Class, plain.Runs[i].Class)
		}
		if combined.Runs[i].Pruned && (combined.Runs[i].Restored || combined.Runs[i].EarlyExit) {
			t.Fatalf("run %d is pruned but consumed checkpoint work: %+v", i, combined.Runs[i])
		}
	}
}

// TestCheckpointParallelRace: a checkpointed campaign with experiment-level
// parallelism forks the shared trace snapshots concurrently; under -race
// this proves the copy-on-write pages and journal are safe to share, and
// the outcomes must still match the sequential campaign exactly.
func TestCheckpointParallelRace(t *testing.T) {
	w := iterWorkload{}
	r, golden, profile := iterCampaignInputs(t)
	base := campaign.TransientCampaignConfig{Injections: 48, Seed: 13, Checkpoint: true, Parallel: 1}
	seq, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallel = 8
	conc, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range conc.Runs {
		if conc.Runs[i].Class != seq.Runs[i].Class {
			t.Fatalf("run %d classified %+v parallel vs %+v sequential",
				i, conc.Runs[i].Class, seq.Runs[i].Class)
		}
		if conc.Runs[i].Restored != seq.Runs[i].Restored || conc.Runs[i].EarlyExit != seq.Runs[i].EarlyExit {
			t.Fatalf("run %d checkpoint flags differ: parallel %+v vs sequential %+v",
				i, conc.Runs[i], seq.Runs[i])
		}
	}
	if conc.Tally.Restored == 0 {
		t.Fatal("parallel checkpointed campaign restored nothing")
	}
}

// benchCheckpointCampaign times a 200-injection site-resolved campaign over
// the late-injection-heavy workload with and without the checkpoint engine.
func benchCheckpointCampaign(b *testing.B, checkpoint bool) {
	w := iterWorkload{}
	r, golden, profile := iterCampaignInputs(b)
	cfg := campaign.TransientCampaignConfig{
		Injections: 200, Seed: 31, ResolveSites: true,
		Checkpoint: checkpoint, TimingFidelity: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if checkpoint && res.Tally.Restored == 0 {
			b.Fatal("checkpointed campaign restored nothing")
		}
	}
}

func BenchmarkTransientCampaignBaseline(b *testing.B)     { benchCheckpointCampaign(b, false) }
func BenchmarkTransientCampaignCheckpointed(b *testing.B) { benchCheckpointCampaign(b, true) }
