package campaign

import (
	"testing"

	"repro/internal/gpu"
)

// TestExperimentBudgetFloor pins the experiment hang-budget calibration:
// BudgetFactor times the golden warp-instruction count, floored at
// MinBudgetCalibration so near-empty golden runs don't turn legitimate
// fault behaviour into instant instruction-limit traps.
func TestExperimentBudgetFloor(t *testing.T) {
	r := Runner{}.applyDefaults()
	cases := []struct {
		goldenWI uint64
		want     uint64
	}{
		{0, r.BudgetFactor * MinBudgetCalibration},
		{1, r.BudgetFactor * MinBudgetCalibration},
		{MinBudgetCalibration - 1, r.BudgetFactor * MinBudgetCalibration},
		{MinBudgetCalibration, r.BudgetFactor * MinBudgetCalibration},
		{MinBudgetCalibration + 1, r.BudgetFactor * (MinBudgetCalibration + 1)},
		{5_000_000, r.BudgetFactor * 5_000_000},
	}
	for _, c := range cases {
		g := &GoldenResult{Stats: gpu.LaunchStats{WarpInstrs: c.goldenWI}}
		if got := r.experimentBudget(g); got != c.want {
			t.Errorf("experimentBudget(golden %d warp instrs) = %d, want %d", c.goldenWI, got, c.want)
		}
	}
	// A custom factor scales the floored value, not just the raw count.
	r2 := Runner{BudgetFactor: 3}.applyDefaults()
	g := &GoldenResult{}
	if got, want := r2.experimentBudget(g), uint64(3*MinBudgetCalibration); got != want {
		t.Errorf("experimentBudget with factor 3 = %d, want %d", got, want)
	}
}
