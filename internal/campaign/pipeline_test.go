package campaign_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/sass"
	"repro/internal/specaccel"
)

// TestFullPipeline exercises the complete Figure 1 flow on 303.ostencil:
// golden run, exact profile, fault selection, injection, classification.
func TestFullPipeline(t *testing.T) {
	w, err := specaccel.ByName("303.ostencil")
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.Runner{}

	golden, err := r.Golden(w)
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	if golden.Stats.ThreadInstrs == 0 {
		t.Fatal("golden run executed no instructions")
	}
	if golden.Output.Stdout == "" || len(golden.Output.Files) == 0 {
		t.Fatal("golden run produced no output")
	}

	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if got := profile.DynamicKernels(); got != 101 {
		t.Fatalf("dynamic kernels = %d, want 101 (Table IV)", got)
	}
	if got := len(profile.StaticKernels()); got != 2 {
		t.Fatalf("static kernels = %d, want 2 (Table IV)", got)
	}
	// The profile's total thread-level count must match the golden run's
	// engine-side count exactly.
	if got, want := profile.TotalInstrs(sass.GroupGPPR)+profile.TotalInstrs(sass.GroupNODEST),
		golden.Stats.ThreadInstrs; got != want {
		t.Fatalf("profiled instruction total = %d, engine counted %d", got, want)
	}

	// A deterministic campaign of 20 single-bit flips.
	res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, campaign.TransientCampaignConfig{
		Injections: 20,
		Group:      sass.GroupGPPR,
		BitFlip:    core.FlipSingleBit,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if res.Tally.N != 20 {
		t.Fatalf("ran %d experiments, want 20", res.Tally.N)
	}
	activated := 0
	for _, run := range res.Runs {
		if run.Injection.Activated {
			activated++
		}
	}
	// With an exact profile every selected site must exist.
	if activated != 20 {
		t.Fatalf("only %d/20 faults activated with an exact profile", activated)
	}
	t.Logf("outcomes: %v (potential DUEs %d)", res.Tally, res.Tally.PotentialDUEs)
	if res.Tally.Counts[campaign.Masked] == 0 {
		t.Error("expected at least one masked outcome in 20 single-bit flips")
	}
}

// TestDeterminism re-runs one injection and requires identical results.
func TestDeterminism(t *testing.T) {
	w, err := specaccel.ByName("303.ostencil")
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	p, err := core.SelectTransientFault(profile, sass.GroupGP, core.RandomValue, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.RunTransient(context.Background(), w, golden, *p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunTransient(context.Background(), w, golden, *p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Class != b.Class {
		t.Fatalf("same fault classified differently: %v vs %v", a.Class, b.Class)
	}
	if a.Injection != b.Injection {
		t.Fatalf("same fault injected differently:\n%+v\n%+v", a.Injection, b.Injection)
	}
	if !a.Injection.Activated {
		t.Fatal("fault did not activate")
	}
	if a.Injection.Before == a.Injection.After {
		t.Fatal("RANDOM_VALUE corruption left the register unchanged")
	}
}
