package campaign_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/report"
	"repro/internal/specaccel"
)

// classSrc is a kernel engineered to be class-heavy in the way the campaign
// can exploit: most sites sit in provably-masked equivalence classes. Eight
// identical dead immediate moves form one empty-shadow class (the pruner's
// case, here the degenerate class), and sixteen transitively-dead MOV/IADD
// chains — each MOV is read once, but only by an IADD whose result dies —
// form two masked classes the pruner cannot prove but the shadow pass can.
// The live tail (address chain plus four IADD→STG idioms) classes as a
// data-bearing shadow, which the campaign deliberately runs individually:
// whether a stored corruption reaches the checked output is dynamic, so
// only masked classes may answer members.
const classSrc = `
.kernel classk
.param outptr
    S2R R0, SR_TID.X
    SHL R3, R0, 0x2
    IADD R4, R3, c0[outptr]
    MOV R10, 0x1
    MOV R11, 0x1
    MOV R12, 0x1
    MOV R13, 0x1
    MOV R14, 0x1
    MOV R15, 0x1
    MOV R16, 0x1
    MOV R17, 0x1
    MOV R20, R0
    IADD R21, R20, 0x1
    MOV R20, R0
    IADD R21, R20, 0x2
    MOV R20, R0
    IADD R21, R20, 0x3
    MOV R20, R0
    IADD R21, R20, 0x4
    MOV R20, R0
    IADD R21, R20, 0x5
    MOV R20, R0
    IADD R21, R20, 0x6
    MOV R20, R0
    IADD R21, R20, 0x7
    MOV R20, R0
    IADD R21, R20, 0x8
    MOV R20, R0
    IADD R21, R20, 0x9
    MOV R20, R0
    IADD R21, R20, 0xa
    MOV R20, R0
    IADD R21, R20, 0xb
    MOV R20, R0
    IADD R21, R20, 0xc
    MOV R20, R0
    IADD R21, R20, 0xd
    MOV R20, R0
    IADD R21, R20, 0xe
    MOV R20, R0
    IADD R21, R20, 0xf
    MOV R20, R0
    IADD R21, R20, 0x10
    IADD R5, R0, 0x1
    STG.32 [R4], R5
    IADD R5, R0, 0x2
    STG.32 [R4+0x100], R5
    IADD R5, R0, 0x3
    STG.32 [R4+0x200], R5
    IADD R5, R0, 0x4
    STG.32 [R4+0x300], R5
    EXIT
`

// classWorkload drives classSrc: 64 threads, the full output buffer printed
// to stdout so every live corruption is observable.
type classWorkload struct{}

func (classWorkload) Name() string        { return "classheavy" }
func (classWorkload) Description() string { return "kernel with repeated classable injection idioms" }

func (classWorkload) Run(ctx *cuda.Context) (*campaign.Output, error) {
	out := campaign.NewOutput()
	mod, err := ctx.LoadModule("classes", classSrc)
	if err != nil {
		return out, err
	}
	fn, err := mod.Function("classk")
	if err != nil {
		return out, err
	}
	buf, err := ctx.Malloc(4 * 0x100)
	if err != nil {
		return out, err
	}
	cfg := cuda.LaunchConfig{Grid: gpu.Dim3{X: 1, Y: 1, Z: 1}, Block: gpu.Dim3{X: 64, Y: 1, Z: 1}}
	_ = ctx.Launch(fn, cfg, buf)
	b, err := ctx.MemcpyDtoH(buf, 4*0x100)
	if err != nil {
		return out, nil
	}
	for i := 0; i+4 <= len(b); i += 4 {
		out.Printf("%d ", binary.LittleEndian.Uint32(b[i:]))
	}
	return out, nil
}

func (classWorkload) Check(golden, observed *campaign.Output) bool { return golden.Equal(observed) }

// runPair runs the same campaign with class sampling off and on and returns
// both results.
func runPair(t *testing.T, w campaign.Workload, injections int, seed int64) (off, on *campaign.CampaignResult) {
	t.Helper()
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	base := campaign.TransientCampaignConfig{Injections: injections, Seed: seed, ResolveSites: true}
	off, err = campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, base)
	if err != nil {
		t.Fatal(err)
	}
	classed := base
	classed.Classes = true
	on, err = campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, classed)
	if err != nil {
		t.Fatal(err)
	}
	return off, on
}

// assertRunsMatch holds the class-sampled campaign to the full campaign
// run for run: every answered member's inherited classification must equal
// what actually injecting that member produced.
func assertRunsMatch(t *testing.T, w campaign.Workload, off, on *campaign.CampaignResult) {
	t.Helper()
	if on.Tally.N != off.Tally.N {
		t.Fatalf("%s: run counts differ: classed %d, full %d", w.Name(), on.Tally.N, off.Tally.N)
	}
	for i := range on.Runs {
		if on.Runs[i].Class != off.Runs[i].Class {
			t.Fatalf("%s: run %d classified %v classed vs %v full (site %s#%d, answered=%v)",
				w.Name(), i, on.Runs[i].Class, off.Runs[i].Class,
				on.Runs[i].Injection.Kernel, on.Runs[i].Injection.InstrIdx, on.Runs[i].ClassAnswered)
		}
		a, b := on.Runs[i].Injection, off.Runs[i].Injection
		if a.Kernel != b.Kernel || a.InstrIdx != b.InstrIdx {
			t.Fatalf("%s: run %d site %s#%d classed vs %s#%d full",
				w.Name(), i, a.Kernel, a.InstrIdx, b.Kernel, b.InstrIdx)
		}
	}
	for _, o := range []campaign.Outcome{campaign.Masked, campaign.SDC, campaign.DUE} {
		if on.Tally.Counts[o] != off.Tally.Counts[o] {
			t.Errorf("%s: %v count: classed %d, full %d", w.Name(), o, on.Tally.Counts[o], off.Tally.Counts[o])
		}
	}
	if on.Tally.PotentialDUEs != off.Tally.PotentialDUEs {
		t.Errorf("%s: potential DUEs: classed %d, full %d", w.Name(), on.Tally.PotentialDUEs, off.Tally.PotentialDUEs)
	}
	if off.Tally.ClassReps != 0 || off.Tally.ClassAnswered != 0 {
		t.Errorf("%s: campaign without class sampling reported class counters: %+v", w.Name(), off.Tally)
	}
}

// TestClassSampleDifferential is the within-class consistency proof the
// design demands: a >=200-injection campaign with class sampling enabled
// answers a substantial fraction of its injections from representatives,
// and every answered member must classify exactly as actually injecting it
// does — which the full campaign on the same seed did, run for run.
func TestClassSampleDifferential(t *testing.T) {
	w := classWorkload{}
	off, on := runPair(t, w, 240, 31)
	if on.Tally.ClassAnswered == 0 {
		t.Fatal("class-heavy campaign answered no members from representatives")
	}
	if on.Tally.ClassReps == 0 {
		t.Fatal("class-heavy campaign ran no representatives")
	}
	assertRunsMatch(t, w, off, on)
	// Answered members must point at real class members: site resolved, not
	// activated-flag laundering.
	answered := 0
	for i := range on.Runs {
		if !on.Runs[i].ClassAnswered {
			continue
		}
		answered++
		if on.Runs[i].ClassID == "" {
			t.Errorf("answered run %d carries no class ID", i)
		}
		if !off.Runs[i].Injection.Activated {
			t.Errorf("run %d was answered by a representative but its injected twin never activated", i)
		}
	}
	if answered != on.Tally.ClassAnswered {
		t.Errorf("tally says %d answered, runs say %d", on.Tally.ClassAnswered, answered)
	}
	if sum := report.Summary(on); !strings.Contains(sum, "class reps answered") {
		t.Errorf("CLI summary does not surface class sampling: %q", sum)
	}
	t.Logf("classed campaign: %d reps answered %d of %d injections; tallies %v",
		on.Tally.ClassReps, on.Tally.ClassAnswered, on.Tally.N, on.Tally)
}

// TestClassSampleDifferentialWorkloads sweeps the bundled SPEC ACCEL
// workloads: on every one, the classed campaign must match the full
// campaign run for run. Real kernels class far more sparsely than the
// synthetic workload — many singleton classes, many unclassable sites — so
// this is the soundness check on real code, not a coverage check.
func TestClassSampleDifferentialWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential sweep")
	}
	answered := 0
	for _, w := range specaccel.All() {
		off, on := runPair(t, w, 40, 7)
		assertRunsMatch(t, w, off, on)
		answered += on.Tally.ClassAnswered
	}
	t.Logf("bundled workloads: %d injections answered from representatives", answered)
}

// TestClassesOffByteIdentity: with Classes off, every output surface —
// tally JSON, summary JSON, run log — must be byte-identical to what the
// pipeline produced before class sampling existed: no class fields, no
// class annotations.
func TestClassesOffByteIdentity(t *testing.T) {
	w := classWorkload{}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile,
		campaign.TransientCampaignConfig{Injections: 50, Seed: 3, ResolveSites: true, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	tj, err := json.Marshal(res.Tally)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(tj), `"class_reps"`) || strings.Contains(string(tj), `"class_answered"`) {
		t.Errorf("tally JSON leaks class fields with classing off: %s", tj)
	}
	var sj bytes.Buffer
	if err := report.WriteSummaryJSON(&sj, res); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sj.String(), `"classes"`) {
		t.Errorf("summary JSON leaks class fields with classing off: %s", sj.String())
	}
	var rl bytes.Buffer
	if err := report.WriteRunLog(&rl, res); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rl.String(), " class=") {
		t.Errorf("run log leaks class annotations with classing off:\n%s", rl.String())
	}
	if campaign.ClassWeighted(res.Runs) != nil {
		t.Error("ClassWeighted is non-nil for a campaign without class sampling")
	}
}

// TestClassShardEquivalence: running every shard separately through
// ShardPlan.RunShard (the service worker path) and merging the per-shard
// tallies must reproduce the in-process classed campaign byte for byte —
// the no-double-counting guarantee class-partitioned job specs rely on.
func TestClassShardEquivalence(t *testing.T) {
	w := classWorkload{}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	cfg := campaign.TransientCampaignConfig{Injections: 120, Seed: 9, Classes: true}
	inproc, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := campaign.NewShardPlan(r, w, golden, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	merged := campaign.NewTally()
	for s := 0; s < plan.NumShards(); s++ {
		results, err := plan.RunShard(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		merged.Merge(campaign.TallyRuns(results))
	}
	got, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(inproc.Tally)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("per-shard tallies diverge from in-process campaign:\nshards:     %s\nin-process: %s", got, want)
	}
}

// TestClassWeightedAggregation: the weighted view gives each representative
// the weight of the injections it answers for, and the effective sample
// size honestly reflects that a representative is one observation.
func TestClassWeightedAggregation(t *testing.T) {
	w := classWorkload{}
	_, on := runPair(t, w, 240, 31)
	wt := campaign.ClassWeighted(on.Runs)
	if wt == nil {
		t.Fatal("classed campaign has no weighted view")
	}
	executed := float64(on.Tally.N - on.Tally.ClassAnswered - on.Tally.Pruned)
	if total := wt.Total(); math.Abs(total-float64(on.Tally.N-on.Tally.Pruned)) > 1e-6 {
		t.Errorf("weighted total %v, want %d (N minus pruned)", total, on.Tally.N-on.Tally.Pruned)
	}
	neff := wt.EffectiveSampleSize()
	if neff <= 0 || neff > executed {
		t.Errorf("effective sample size %v outside (0, %v]", neff, executed)
	}
	for _, cat := range []string{"SDC", "Masked"} {
		iv, err := wt.ShareCI(cat, report.ClassConfidence)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Lo > iv.P || iv.P > iv.Hi {
			t.Errorf("%s interval %+v does not bracket its estimate", cat, iv)
		}
	}
	var buf bytes.Buffer
	if err := report.WriteSummaryJSON(&buf, on); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"classes":{"reps":`) {
		t.Errorf("summary JSON missing classes block: %s", buf.String())
	}
}

// TestClassesRequireKernels: class sampling against a golden result that
// predates kernel capture must fail loudly instead of silently running
// everything.
func TestClassesRequireKernels(t *testing.T) {
	w := classWorkload{}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		t.Fatal(err)
	}
	stale := *golden
	stale.Kernels = nil
	_, err = campaign.RunTransientCampaign(context.Background(), r, w, &stale, profile,
		campaign.TransientCampaignConfig{Injections: 4, Seed: 1, Classes: true})
	if err == nil || !strings.Contains(err.Error(), "no kernels") {
		t.Fatalf("class sampling with kernel-less golden result: err = %v", err)
	}
}

// benchClassCampaign times a 240-injection site-resolved campaign over the
// class-heavy workload with and without class sampling, reporting how many
// experiments actually executed. The classed campaign must execute at least
// 2x fewer experiments for the identical outcome tally (hence an identical
// N-based confidence interval; the conservative Kish interval is reported
// alongside in the summary).
func benchClassCampaign(b *testing.B, classes bool) {
	w := classWorkload{}
	r := campaign.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		b.Fatal(err)
	}
	profile, _, err := r.Profile(w, core.Exact)
	if err != nil {
		b.Fatal(err)
	}
	cfg := campaign.TransientCampaignConfig{
		Injections: 240, Seed: 31, ResolveSites: true, Classes: classes, TimingFidelity: true,
	}
	b.ResetTimer()
	var executed int
	for i := 0; i < b.N; i++ {
		res, err := campaign.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
		if err != nil {
			b.Fatal(err)
		}
		executed = res.Tally.N - res.Tally.ClassAnswered - res.Tally.Pruned
		if classes && 2*executed > res.Tally.N {
			b.Fatalf("classed campaign executed %d of %d experiments, want at most half", executed, res.Tally.N)
		}
	}
	b.ReportMetric(float64(executed), "experiments/op")
}

func BenchmarkTransientCampaignUnclassed(b *testing.B) { benchClassCampaign(b, false) }
func BenchmarkTransientCampaignClassed(b *testing.B)   { benchClassCampaign(b, true) }
