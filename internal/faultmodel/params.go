package faultmodel

import (
	"fmt"
	"strconv"
	"strings"
)

// modelParam is a parsed `-model-param` string: comma-separated key=value
// pairs, e.g. "value=0,bit=17" or "p=0.25". Models validate keys against
// their own vocabulary so a typo fails fast instead of silently meaning the
// default.
type modelParam map[string]string

// parseParam parses a parameter string and checks every key against the
// allowed set.
func parseParam(param string, allowed ...string) (modelParam, error) {
	kv := modelParam{}
	if param == "" {
		return kv, nil
	}
	for _, part := range strings.Split(param, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("faultmodel: bad parameter %q (want key=value[,key=value...])", part)
		}
		found := false
		for _, a := range allowed {
			if k == a {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faultmodel: unknown parameter key %q (want one of %v)", k, allowed)
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("faultmodel: duplicate parameter key %q", k)
		}
		kv[k] = v
	}
	return kv, nil
}

// intParam reads an integer key with bounds, returning def when absent.
func (m modelParam) intParam(key string, def, lo, hi int) (int, error) {
	s, ok := m[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("faultmodel: parameter %s=%q is not an integer", key, s)
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("faultmodel: parameter %s=%d outside %d..%d", key, n, lo, hi)
	}
	return n, nil
}

// floatParam reads a float key in (lo, hi), returning def when absent.
func (m modelParam) floatParam(key string, def, lo, hi float64) (float64, error) {
	s, ok := m[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("faultmodel: parameter %s=%q is not a number", key, s)
	}
	if f <= lo || f >= hi {
		return 0, fmt.Errorf("faultmodel: parameter %s=%v outside (%v,%v)", key, f, lo, hi)
	}
	return f, nil
}
