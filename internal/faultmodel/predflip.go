package faultmodel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
)

// predflipModel corrupts control state: at the selected dynamic execution of
// a predicate-writing instruction (ISETP and friends), the just-written
// predicate result is inverted for one lane — or, with "guard=1", the
// instruction's live guard predicate is inverted instead, modeling a fault
// in the predicate file feeding the issue stage rather than in the setp
// unit's output. Either way the corruption lands in the machine's
// condition/divergence state, the fault class Guerrero-Balaguera et al.
// show transient register flips never reach.
//
// The flip is a single-shot predicate inversion, not a destination-register
// bit pattern, so the destination-flip accelerations are unsound for it.
type predflipModel struct{}

func init() { register(predflipModel{}) }

func (predflipModel) Name() string { return "predflip" }

func (predflipModel) Description() string {
	return "invert one dynamic predicate result (or, with guard=1, the instruction's guard predicate)"
}

func (predflipModel) DefaultGroup() sass.Group { return sass.GroupPR }

// EligibleOp accepts predicate-writing opcodes: their sites always carry
// predicate state to corrupt, in both dest and guard mode.
func (predflipModel) EligibleOp(op sass.Op) bool { return op.Info().WritesPR() }

func (predflipModel) Caps() Caps { return 0 }

func (predflipModel) ValidateParam(param string) error {
	_, err := parsePredflipParam(param)
	return err
}

func parsePredflipParam(param string) (guard bool, err error) {
	kv, err := parseParam(param, "guard")
	if err != nil {
		return false, err
	}
	if v, ok := kv["guard"]; ok {
		switch v {
		case "0":
		case "1":
			guard = true
		default:
			return false, fmt.Errorf("faultmodel: predflip guard=%q (want 0 or 1)", v)
		}
	}
	return guard, nil
}

func (m predflipModel) NewInjector(p core.TransientParams, param string, env Env) (Injector, error) {
	guard, err := parsePredflipParam(param)
	if err != nil {
		return nil, err
	}
	in, err := env.instrAt(p)
	if err != nil {
		return nil, err
	}
	if !m.EligibleOp(in.Op) {
		return nil, fmt.Errorf("faultmodel: predflip target %v at %s@%d writes no predicate",
			in.Op, p.KernelName, p.StaticInstrIdx)
	}
	return &predflipInjector{p: p, guard: guard}, nil
}

// predflipInjector inverts one dynamic predicate at the resolved site.
type predflipInjector struct {
	p     core.TransientParams
	guard bool

	counter uint64
	active  bool
	rec     core.InjectionRecord
}

var _ nvbit.Tool = (*predflipInjector)(nil)

func (f *predflipInjector) Name() string                 { return "predflip_injector" }
func (f *predflipInjector) Record() core.InjectionRecord { return f.rec }
func (f *predflipInjector) Activations() uint64          { return 0 }

func (f *predflipInjector) OnLaunch(info *nvbit.LaunchInfo) nvbit.Decision {
	if info.Kernel.Name != f.p.KernelName || info.LaunchIndex != f.p.KernelCount {
		return nvbit.RunOriginal
	}
	f.active = true
	f.counter = 0
	return nvbit.Decision{Instrument: true, Key: fmt.Sprintf("predflip:%v@%d", f.guard, f.p.StaticInstrIdx)}
}

func (f *predflipInjector) Instrument(k *sass.Kernel, _ string, ins *nvbit.Inserter) {
	i := f.p.StaticInstrIdx
	if i >= len(k.Instrs) {
		return
	}
	ins.InsertAfter(i, f.step)
}

// step runs the countdown over thread-level executions of the site and
// inverts the selected predicate when the count lands.
func (f *predflipInjector) step(c *gpu.InstrCtx) {
	if !f.active || f.rec.Activated {
		return
	}
	n := uint64(c.LaneCount())
	if f.counter+n <= f.p.InstrCount {
		f.counter += n
		return
	}
	k := f.p.InstrCount - f.counter
	f.counter += n
	for lane := 0; lane < gpu.WarpSize; lane++ {
		if !c.LaneActive(lane) {
			continue
		}
		if k > 0 {
			k--
			continue
		}
		f.corrupt(c, lane)
		return
	}
}

// corrupt inverts the target predicate of one lane: the guard predicate in
// guard mode, otherwise one of the instruction's predicate destinations
// (chosen by DestRegSelect when it writes several).
func (f *predflipInjector) corrupt(c *gpu.InstrCtx, lane int) {
	f.rec = core.InjectionRecord{
		Activated: true,
		Kernel:    c.Kernel.Name,
		InstrIdx:  f.p.StaticInstrIdx,
		Opcode:    c.Instr.Op,
		SMID:      c.SMID,
		BlockLin:  c.BlockLin,
		WarpID:    c.WarpID,
		Lane:      lane,
	}
	var preds []sass.PredID
	if f.guard {
		// A PT guard has no storage to corrupt; the record then reports a
		// fault with no corruptible state, like a G_NODEST transient.
		if g := c.Instr.Guard.Pred; g != sass.PT {
			preds = append(preds, g)
		}
	} else {
		for i := range c.Instr.Dst {
			if d := &c.Instr.Dst[i]; d.Kind == sass.OpdPred && d.Pred.Pred != sass.PT {
				preds = append(preds, d.Pred.Pred)
			}
		}
	}
	if len(preds) == 0 {
		f.rec.NoDestination = true
		c.Disarm()
		return
	}
	pr := preds[int(f.p.DestRegSelect*float64(len(preds)))]
	before := c.ReadPred(lane, pr)
	c.WritePred(lane, pr, !before)
	f.rec.Target = pr.String()
	f.rec.PredValue = !before
	if before {
		f.rec.Before = 1
	} else {
		f.rec.After = 1
	}
	c.Disarm()
}

func (f *predflipInjector) OnLaunchDone(info *nvbit.LaunchInfo, _ gpu.LaunchStats, _ *gpu.Trap, _ bool) {
	if f.active && info.Kernel != nil && info.Kernel.Name == f.p.KernelName &&
		info.LaunchIndex == f.p.KernelCount {
		f.active = false
	}
}
