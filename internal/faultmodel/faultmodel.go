// Package faultmodel is the pluggable fault-model subsystem: it defines the
// Model interface the campaign layer drives — selection-space enumeration
// via per-site opcode eligibility, an injector factory, and a soundness
// capability bitmask — plus the registry of concrete models. The transient
// destination-register flip (the paper's core model) is the default; the
// other models implement the fault classes related work reaches beyond it:
// permanent stuck-at faults with activation gates (pf_injector), ICOC-style
// opcode substitution (nvbitPERfi), predicate/condition-state corruption
// (Guerrero-Balaguera et al.'s control-unit faults), and stuck bits in
// device memory.
//
// Soundness is explicit: campaign accelerations that reason statically about
// destination-register semantics — dead-destination pruning, fault-
// equivalence class sampling, checkpoint early-exit, certain-stratum
// adaptive pooling — are only valid for the transient model, and each model
// declares which of them it supports through Caps. The campaign layer
// refuses unsupported combinations rather than silently miscounting.
package faultmodel

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/nvbit"
	"repro/internal/sass"
)

// Caps is the soundness capability bitmask: which campaign accelerations a
// model's semantics keep correct.
type Caps uint8

const (
	// CapPrune marks a model for which sassan dead-destination pruning is
	// sound: the fault corrupts exactly the destination registers of one
	// dynamic instruction, so a provably-dead destination proves Masked.
	CapPrune Caps = 1 << iota
	// CapClasses marks a model for which fault-propagation equivalence
	// classes answer members: the class shadows model destination-flip
	// propagation, so a representative's outcome only transfers under
	// destination-flip semantics.
	CapClasses
	// CapCheckpoint marks a model whose faults fire at a single dynamic
	// point after a fault-free prefix, so restoring from a golden-trajectory
	// snapshot before the injection point is sound.
	CapCheckpoint
	// CapEarlyExit marks a model for which digest re-convergence with the
	// golden trajectory settles the run's tail (requires CapCheckpoint).
	CapEarlyExit
	// CapCertainStrata marks a model for which provably-masked equivalence
	// classes are zero-variance strata in the adaptive estimator.
	CapCertainStrata
)

// Has reports whether every capability in want is present.
func (c Caps) Has(want Caps) bool { return c&want == want }

// Env is the campaign context a model builds injectors against: the device
// shape and the static/dynamic views of the workload the site selection ran
// over. It is derived once per campaign (see campaign.ModelEnv) and shared
// by every experiment.
type Env struct {
	// Family is the simulated architecture family.
	Family sass.Family
	// NumSMs is the device's SM count.
	NumSMs int
	// Kernels maps kernel name to decoded kernel for every module the golden
	// run loaded — the static instruction view behind site-resolved params.
	Kernels map[string]*sass.Kernel
	// OpcodeTotals is the profile's dynamic instruction count per opcode,
	// the weighting the opcode-substitution model draws substitutes from.
	OpcodeTotals map[sass.Op]uint64
}

// instrAt resolves a site-resolved parameter tuple to its static
// instruction, validating the site against the kernel view.
func (e Env) instrAt(p core.TransientParams) (*sass.Instr, error) {
	if !p.SiteResolved {
		return nil, fmt.Errorf("faultmodel: params are not site-resolved (model selection requires site data)")
	}
	k := e.Kernels[p.KernelName]
	if k == nil {
		return nil, fmt.Errorf("faultmodel: kernel %q not in the golden module view", p.KernelName)
	}
	if p.StaticInstrIdx < 0 || p.StaticInstrIdx >= len(k.Instrs) {
		return nil, fmt.Errorf("faultmodel: static instruction index %d outside kernel %q (%d instructions)",
			p.StaticInstrIdx, p.KernelName, len(k.Instrs))
	}
	return &k.Instrs[p.StaticInstrIdx], nil
}

// Injector is one experiment's fault tool: an nvbit.Tool plus the outcome
// accessors the campaign records. Injectors are single-use — one experiment,
// one context.
type Injector interface {
	nvbit.Tool
	// Record reports what the injection did, in the transient record shape
	// every model maps its outcome onto.
	Record() core.InjectionRecord
	// Activations counts fault-site exercises for models with repeated
	// activation semantics (permanent, memory); single-shot models return 0.
	Activations() uint64
}

// Model is one fault model: it scopes the selection space (DefaultGroup,
// EligibleOp), declares which campaign accelerations its semantics keep
// sound (Caps), validates its parameter string, and builds per-experiment
// injectors.
type Model interface {
	// Name is the registry key (`-model` value).
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// DefaultGroup is the instruction group a campaign samples from when the
	// config names none.
	DefaultGroup() sass.Group
	// EligibleOp reports whether the model can inject at sites of this
	// opcode. Selection filters the site population with it, so every
	// selected tuple is injectable.
	EligibleOp(op sass.Op) bool
	// Caps is the soundness capability bitmask.
	Caps() Caps
	// ValidateParam checks a `-model-param` string ("" is always valid).
	ValidateParam(param string) error
	// NewInjector builds the single-use injector for one parameter tuple.
	NewInjector(p core.TransientParams, param string, env Env) (Injector, error)
}

// DefaultName names the default model: the paper's transient destination-
// register flip. A config with an empty model name means this model, and
// encodes byte-identically to builds that predate the subsystem.
const DefaultName = "transient"

// registry holds the concrete models by name.
var registry = map[string]Model{}

func register(m Model) {
	if _, dup := registry[m.Name()]; dup {
		panic("faultmodel: duplicate model " + m.Name())
	}
	registry[m.Name()] = m
}

// Lookup resolves a model name. The empty string resolves to the default
// transient model.
func Lookup(name string) (Model, error) {
	if name == "" {
		name = DefaultName
	}
	m, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("faultmodel: unknown model %q (have %v)", name, Names())
	}
	return m, nil
}

// Names lists the registered models in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// IsDefault reports whether a config-level model name means the default
// transient model (empty or the explicit default name).
func IsDefault(name string) bool { return name == "" || name == DefaultName }

// splitmix64 is the shared parameter-derivation mixer: models that need
// discrete fault coordinates (SM, lane, bit) beyond the transient tuple's
// two unit floats derive them as pure functions of the tuple through it, so
// a parameter set maps to one fault wherever it runs.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// paramHash folds a tuple's discrete identity into one 64-bit stream seed.
func paramHash(p core.TransientParams) uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		h = splitmix64(h ^ v)
	}
	for _, b := range []byte(p.KernelName) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	mix(uint64(p.KernelCount))
	mix(p.InstrCount)
	mix(uint64(int64(p.StaticInstrIdx)))
	return h
}
