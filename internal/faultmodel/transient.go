package faultmodel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sass"
)

// transientModel is the default model: the paper's single transient
// destination-register flip, the existing core.TransientInjector behind the
// Model interface. Every campaign acceleration was built for (and
// differentially proven against) these semantics, so it holds every
// capability.
type transientModel struct{}

func init() { register(transientModel{}) }

func (transientModel) Name() string { return DefaultName }

func (transientModel) Description() string {
	return "single transient bit-flip in one dynamic instruction's destination register(s)"
}

func (transientModel) DefaultGroup() sass.Group { return sass.GroupGPPR }

// EligibleOp accepts every opcode: the transient selection space is scoped
// by the instruction group alone, exactly as before the subsystem existed.
func (transientModel) EligibleOp(sass.Op) bool { return true }

func (transientModel) Caps() Caps {
	return CapPrune | CapClasses | CapCheckpoint | CapEarlyExit | CapCertainStrata
}

func (transientModel) ValidateParam(param string) error {
	if param != "" {
		return fmt.Errorf("faultmodel: transient model takes no parameter, got %q", param)
	}
	return nil
}

func (transientModel) NewInjector(p core.TransientParams, param string, _ Env) (Injector, error) {
	if err := (transientModel{}).ValidateParam(param); err != nil {
		return nil, err
	}
	inj, err := core.NewTransientInjector(p)
	if err != nil {
		return nil, err
	}
	return transientInjector{inj}, nil
}

// transientInjector adapts core.TransientInjector to the Injector surface.
type transientInjector struct {
	*core.TransientInjector
}

// Activations implements Injector: the transient flip is single-shot.
func (transientInjector) Activations() uint64 { return 0 }
