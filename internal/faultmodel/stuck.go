package faultmodel

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sass"
)

// stuckModel is the permanent stuck-at fault: every dynamic instance of the
// selected site's opcode executing on one SM and lane has one destination
// bit forced to 0 or 1 — core.PermanentInjector (the pf_injector analog)
// promoted to a first-class campaign path. The transient selection tuple
// picks the opcode (via the resolved site) and deterministically derives the
// SM/lane/bit coordinates, so the seeded shard streams drive permanent
// campaigns with no new selection machinery.
//
// Optional activation gates make the fault intermittent: "p=0.25" gates each
// activation through a seeded RandomGate, "burst=LEN/PERIOD" through a
// BurstGate — the paper's random/bursty intermittent-fault processes.
//
// None of the destination-flip accelerations are sound here: the fault fires
// on every activation, not one, so pruning one dead write proves nothing,
// class representatives don't transfer, and there is no fault-free prefix to
// checkpoint past.
type stuckModel struct{}

func init() { register(stuckModel{}) }

func (stuckModel) Name() string { return "stuck" }

func (stuckModel) Description() string {
	return "permanent stuck-at-0/1 destination bit on one SM lane, with optional activation gates"
}

func (stuckModel) DefaultGroup() sass.Group { return sass.GroupGPPR }

// EligibleOp restricts selection to opcodes with destinations: a stuck
// destination bit needs a destination to stick.
func (stuckModel) EligibleOp(op sass.Op) bool { return op.Info().HasDest() }

func (stuckModel) Caps() Caps { return 0 }

func (stuckModel) ValidateParam(param string) error {
	_, err := parseStuckParam(param)
	return err
}

// stuckConfig is the parsed parameter set.
type stuckConfig struct {
	stuckAt1              bool    // force the bit to 1 (default) or 0
	bit                   int     // bit position, -1 = derive from the tuple
	p                     float64 // RandomGate probability, 0 = ungated
	burstLen, burstPeriod uint64
}

func parseStuckParam(param string) (stuckConfig, error) {
	cfg := stuckConfig{stuckAt1: true, bit: -1}
	kv, err := parseParam(param, "value", "bit", "p", "burst")
	if err != nil {
		return cfg, err
	}
	if v, ok := kv["value"]; ok {
		switch v {
		case "0":
			cfg.stuckAt1 = false
		case "1":
			cfg.stuckAt1 = true
		default:
			return cfg, fmt.Errorf("faultmodel: stuck value=%q (want 0 or 1)", v)
		}
	}
	if cfg.bit, err = kv.intParam("bit", -1, 0, 31); err != nil {
		return cfg, err
	}
	if cfg.p, err = kv.floatParam("p", 0, 0, 1); err != nil {
		return cfg, err
	}
	if b, ok := kv["burst"]; ok {
		if _, err := fmt.Sscanf(strings.TrimSpace(b)+"\n", "%d/%d\n", &cfg.burstLen, &cfg.burstPeriod); err != nil {
			return cfg, fmt.Errorf("faultmodel: stuck burst=%q (want LEN/PERIOD)", b)
		}
		if cfg.burstLen == 0 || cfg.burstPeriod == 0 || cfg.burstLen > cfg.burstPeriod {
			return cfg, fmt.Errorf("faultmodel: stuck burst=%q needs 0 < LEN <= PERIOD", b)
		}
	}
	if cfg.p > 0 && cfg.burstPeriod > 0 {
		return cfg, fmt.Errorf("faultmodel: stuck p= and burst= gates are mutually exclusive")
	}
	return cfg, nil
}

func (stuckModel) NewInjector(p core.TransientParams, param string, env Env) (Injector, error) {
	cfg, err := parseStuckParam(param)
	if err != nil {
		return nil, err
	}
	in, err := env.instrAt(p)
	if err != nil {
		return nil, err
	}
	set := sass.OpcodeSet(env.Family)
	opID := -1
	for i, op := range set {
		if op == in.Op {
			opID = i
			break
		}
	}
	if opID < 0 {
		return nil, fmt.Errorf("faultmodel: opcode %v not in the %v opcode set", in.Op, env.Family)
	}
	// Derive the hardware coordinates as pure functions of the tuple: the
	// discrete identity seeds a splitmix stream for the SM, the unit floats
	// map onto the lane and (absent an override) the bit.
	h := paramHash(p)
	pp := core.PermanentParams{
		SMID:     int(splitmix64(h) % uint64(env.NumSMs)),
		Lane:     int(p.DestRegSelect * 32),
		OpcodeID: opID,
	}
	bit := cfg.bit
	if bit < 0 {
		bit = int(p.BitPatternValue*32) & 31
	}
	pp.BitMask = 1 << bit
	inj, err := core.NewPermanentInjector(pp, env.Family, env.NumSMs)
	if err != nil {
		return nil, err
	}
	// Stuck-at corruption replaces the default XOR: OR the mask in for
	// stuck-at-1, clear it for stuck-at-0. The dictionary covers the target
	// opcode (and any extras, if ever set).
	stick := func(_ sass.Op, old uint32) uint32 {
		if cfg.stuckAt1 {
			return old | pp.BitMask
		}
		return old &^ pp.BitMask
	}
	dict := core.FaultDictionary{}
	for _, id := range append([]int{pp.OpcodeID}, pp.ExtraOpcodeIDs...) {
		dict[set[id]] = stick
	}
	inj.SetDictionary(dict)
	if cfg.p > 0 {
		inj.SetGate(core.RandomGate{P: cfg.p, Seed: int64(splitmix64(h ^ 0xa5a5a5a5))})
	} else if cfg.burstPeriod > 0 {
		inj.SetGate(core.BurstGate{Period: cfg.burstPeriod, BurstLen: cfg.burstLen,
			Offset: splitmix64(h^0x5a5a5a5a) % cfg.burstPeriod})
	}
	return &stuckInjector{PermanentInjector: inj, p: p, op: in.Op}, nil
}

// stuckInjector adapts core.PermanentInjector to the Injector surface.
type stuckInjector struct {
	*core.PermanentInjector
	p  core.TransientParams
	op sass.Op
}

// Record synthesizes the transient-shaped record: the fault activated when
// at least one corruption landed.
func (s *stuckInjector) Record() core.InjectionRecord {
	return core.InjectionRecord{
		Activated: s.Corruptions() > 0,
		Kernel:    s.p.KernelName,
		InstrIdx:  s.p.StaticInstrIdx,
		Opcode:    s.op,
		SMID:      s.P.SMID,
		Lane:      s.P.Lane,
		Mask:      s.P.BitMask,
	}
}
