package faultmodel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
)

// memfaultModel is the storage-cell fault: from the selected dynamic
// execution of a load site onward, one bit of one word of device memory is
// stuck at 0 or 1. The tuple's unit floats pick the word (a fraction over
// the live allocation spans) and the bit; the stuck value comes from the
// parameter. The bit is asserted when the fault arms and re-asserted after
// every subsequent store, so writes cannot heal the cell — the defining
// difference from a transient flip of a loaded value.
//
// Selection targets load sites (GroupLD) so the armed fault sits on a
// buffer the kernel demonstrably reads; the corrupted cell itself is chosen
// independently of the site.
type memfaultModel struct{}

func init() { register(memfaultModel{}) }

func (memfaultModel) Name() string { return "memfault" }

func (memfaultModel) Description() string {
	return "stuck-at-0/1 bit in one device-memory word, armed at a load site and re-asserted after every store"
}

func (memfaultModel) DefaultGroup() sass.Group { return sass.GroupLD }

// EligibleOp accepts memory loads: the arming site must touch memory.
func (memfaultModel) EligibleOp(op sass.Op) bool { return op.Info().IsLoad() }

func (memfaultModel) Caps() Caps { return 0 }

func (memfaultModel) ValidateParam(param string) error {
	_, err := parseMemfaultParam(param)
	return err
}

type memfaultConfig struct {
	stuckAt1 bool
	bit      int // -1 = derive from the tuple
}

func parseMemfaultParam(param string) (memfaultConfig, error) {
	cfg := memfaultConfig{stuckAt1: true, bit: -1}
	kv, err := parseParam(param, "value", "bit")
	if err != nil {
		return cfg, err
	}
	if v, ok := kv["value"]; ok {
		switch v {
		case "0":
			cfg.stuckAt1 = false
		case "1":
			cfg.stuckAt1 = true
		default:
			return cfg, fmt.Errorf("faultmodel: memfault value=%q (want 0 or 1)", v)
		}
	}
	if cfg.bit, err = kv.intParam("bit", -1, 0, 31); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func (m memfaultModel) NewInjector(p core.TransientParams, param string, env Env) (Injector, error) {
	cfg, err := parseMemfaultParam(param)
	if err != nil {
		return nil, err
	}
	in, err := env.instrAt(p)
	if err != nil {
		return nil, err
	}
	if !m.EligibleOp(in.Op) {
		return nil, fmt.Errorf("faultmodel: memfault arming site %v at %s@%d is not a load",
			in.Op, p.KernelName, p.StaticInstrIdx)
	}
	bit := cfg.bit
	if bit < 0 {
		bit = int(p.BitPatternValue*32) & 31
	}
	return &memfaultInjector{p: p, stuckAt1: cfg.stuckAt1, mask: 1 << bit}, nil
}

// memfaultInjector arms a stuck device-memory bit at the resolved load site
// and keeps it asserted for the rest of the workload.
type memfaultInjector struct {
	p        core.TransientParams
	stuckAt1 bool
	mask     uint32

	counter uint64
	active  bool // inside the arming launch, still counting down
	armed   bool // the stuck cell is live
	addr    uint32
	asserts uint64
	rec     core.InjectionRecord
}

var _ nvbit.Tool = (*memfaultInjector)(nil)

func (f *memfaultInjector) Name() string                 { return "memfault_injector" }
func (f *memfaultInjector) Record() core.InjectionRecord { return f.rec }

// Activations counts bit corrections: the arming assertion plus every
// re-assertion that had to undo a store.
func (f *memfaultInjector) Activations() uint64 { return f.asserts }

func (f *memfaultInjector) OnLaunch(info *nvbit.LaunchInfo) nvbit.Decision {
	if info.Kernel.Name == f.p.KernelName && info.LaunchIndex == f.p.KernelCount {
		f.active = true
		f.counter = 0
		return nvbit.Decision{Instrument: true, Key: fmt.Sprintf("memfault:arm@%d", f.p.StaticInstrIdx)}
	}
	// Once armed, every later launch re-asserts after its stores.
	if f.armed {
		return nvbit.Decision{Instrument: true, Key: "memfault:live"}
	}
	return nvbit.RunOriginal
}

func (f *memfaultInjector) Instrument(k *sass.Kernel, key string, ins *nvbit.Inserter) {
	if key == fmt.Sprintf("memfault:arm@%d", f.p.StaticInstrIdx) {
		if i := f.p.StaticInstrIdx; i < len(k.Instrs) {
			ins.InsertAfter(i, f.step)
		}
	}
	// Re-assertion hooks on every store site; inert until armed.
	for i := range k.Instrs {
		if k.Instrs[i].Op.Info().Flags&sass.FlagStore != 0 {
			ins.InsertAfter(i, f.reassert)
		}
	}
}

// step runs the arming countdown over thread-level executions of the site.
func (f *memfaultInjector) step(c *gpu.InstrCtx) {
	if !f.active || f.armed {
		return
	}
	n := uint64(c.LaneCount())
	f.counter += n
	if f.counter <= f.p.InstrCount {
		return
	}
	f.arm(c)
}

// arm picks the stuck cell from the live allocation map and asserts it.
func (f *memfaultInjector) arm(c *gpu.InstrCtx) {
	f.rec = core.InjectionRecord{
		Activated: true,
		Kernel:    c.Kernel.Name,
		InstrIdx:  f.p.StaticInstrIdx,
		Opcode:    c.Instr.Op,
		SMID:      c.SMID,
		BlockLin:  c.BlockLin,
		WarpID:    c.WarpID,
		Mask:      f.mask,
	}
	spans := c.Dev.Mem.Spans()
	var totalWords uint64
	for _, s := range spans {
		totalWords += uint64(s.Size / 4)
	}
	if totalWords == 0 {
		f.rec.NoDestination = true
		f.active = false
		c.Disarm()
		return
	}
	idx := uint64(f.p.DestRegSelect * float64(totalWords))
	for _, s := range spans {
		w := uint64(s.Size / 4)
		if idx < w {
			f.addr = s.Base + uint32(idx)*4
			break
		}
		idx -= w
	}
	f.armed = true
	f.rec.Target = fmt.Sprintf("mem[0x%x]", f.addr)
	if v, trap := c.Dev.Mem.Load(f.addr, 4); trap == 0 {
		f.rec.Before = uint32(v)
	}
	f.assert(c.Dev.Mem)
	if v, trap := c.Dev.Mem.Load(f.addr, 4); trap == 0 {
		f.rec.After = uint32(v)
	}
	// No Disarm: the cell stays stuck, so the re-assert hooks must keep
	// running for the rest of this launch and all later ones.
}

// reassert forces the stuck bit back after a store may have overwritten it.
func (f *memfaultInjector) reassert(c *gpu.InstrCtx) {
	if f.armed {
		f.assert(c.Dev.Mem)
	}
}

// assert forces the stuck bit's value, counting only real corrections.
func (f *memfaultInjector) assert(mem *gpu.Memory) {
	v, trap := mem.Load(f.addr, 4)
	if trap != 0 {
		return
	}
	want := uint32(v) &^ f.mask
	if f.stuckAt1 {
		want = uint32(v) | f.mask
	}
	if want != uint32(v) {
		mem.Store(f.addr, 4, uint64(want))
		f.asserts++
	}
}

func (f *memfaultInjector) OnLaunchDone(info *nvbit.LaunchInfo, _ gpu.LaunchStats, _ *gpu.Trap, _ bool) {
	if f.active && info.Kernel != nil && info.Kernel.Name == f.p.KernelName &&
		info.LaunchIndex == f.p.KernelCount {
		f.active = false
	}
}
