package faultmodel

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
)

// opsubModel is ICOC-style instruction output corruption (nvbitPERfi's
// pf_injector_icoc): at the selected dynamic execution, the instruction's
// destination is overwritten with the result a *different* opcode would have
// produced over the same source operands — the observable effect of a
// decoder or issue-unit fault routing the operation to the wrong functional
// unit. The substitute opcode is drawn weighted-random from the workload's
// own opcode activity (Env.OpcodeTotals), parameterized by the tuple's
// BitPatternValue, so heavy opcodes substitute proportionally more often.
//
// The corruption is a single-shot semantic replacement, not a destination
// bit pattern, so none of the destination-flip accelerations transfer.
type opsubModel struct{}

func init() { register(opsubModel{}) }

// subEntry is one substitutable operation: its canonical opcode (for
// weighting and the ≠-target check) and its result function over up to
// three captured 32-bit source values.
type subEntry struct {
	op sass.Op
	fn func(a, b, c uint32) uint32
}

func f32(x uint32) float32 { return math.Float32frombits(x) }
func b32(x float32) uint32 { return math.Float32bits(x) }
func smin(a, b uint32) uint32 {
	if int32(a) < int32(b) {
		return a
	}
	return b
}

// subTable enumerates the substitution space: the integer and FP32 ALU
// operations the simulator's opcode set shares functional units across.
var subTable = []subEntry{
	{sass.MustOp("IADD3"), func(a, b, c uint32) uint32 { return a + b + c }},
	{sass.MustOp("IMAD"), func(a, b, c uint32) uint32 { return a*b + c }},
	{sass.MustOp("IMNMX"), func(a, b, _ uint32) uint32 { return smin(a, b) }},
	{sass.MustOp("LOP3"), func(a, b, c uint32) uint32 { return (a & b) ^ c }},
	{sass.MustOp("SHF"), func(a, b, _ uint32) uint32 { return a >> (b & 31) }},
	{sass.MustOp("MOV"), func(a, _, _ uint32) uint32 { return a }},
	{sass.MustOp("SEL"), func(_, b, _ uint32) uint32 { return b }},
	{sass.MustOp("FADD"), func(a, b, _ uint32) uint32 { return b32(f32(a) + f32(b)) }},
	{sass.MustOp("FMUL"), func(a, b, _ uint32) uint32 { return b32(f32(a) * f32(b)) }},
	{sass.MustOp("FFMA"), func(a, b, c uint32) uint32 { return b32(f32(a)*f32(b) + f32(c)) }},
	{sass.MustOp("FMNMX"), func(a, b, _ uint32) uint32 { return b32(float32(math.Min(float64(f32(a)), float64(f32(b))))) }},
}

// eligSems is the semantic-kind view of the table: any opcode sharing a
// table entry's semantics (e.g. XMAD alongside IMAD) is a valid target.
var eligSems = func() map[sass.SemKind]bool {
	s := make(map[sass.SemKind]bool, len(subTable))
	for _, e := range subTable {
		s[e.op.Info().Sem] = true
	}
	return s
}()

func (opsubModel) Name() string { return "opsub" }

func (opsubModel) Description() string {
	return "replace one dynamic instruction's output with a weighted-random different opcode's result over the same operands"
}

func (opsubModel) DefaultGroup() sass.Group { return sass.GroupGP }

// EligibleOp accepts GP-writing ALU opcodes the substitution table models.
func (opsubModel) EligibleOp(op sass.Op) bool {
	info := op.Info()
	return info.WritesGP() && eligSems[info.Sem]
}

func (opsubModel) Caps() Caps { return 0 }

func (opsubModel) ValidateParam(param string) error {
	if param != "" {
		return fmt.Errorf("faultmodel: opsub model takes no parameter, got %q", param)
	}
	return nil
}

func (m opsubModel) NewInjector(p core.TransientParams, param string, env Env) (Injector, error) {
	if err := m.ValidateParam(param); err != nil {
		return nil, err
	}
	in, err := env.instrAt(p)
	if err != nil {
		return nil, err
	}
	if !m.EligibleOp(in.Op) {
		return nil, fmt.Errorf("faultmodel: opsub cannot substitute %v at %s@%d", in.Op, p.KernelName, p.StaticInstrIdx)
	}
	// Draw the substitute from the activity-weighted candidate set: every
	// table entry except ones semantically identical to the target, weighted
	// by the opcode's dynamic share plus one (so cold opcodes stay drawable).
	var cands []subEntry
	var weights []uint64
	var total uint64
	for _, e := range subTable {
		if e.op == in.Op || e.op.Info().Sem == in.Op.Info().Sem {
			continue
		}
		w := env.OpcodeTotals[e.op] + 1
		cands = append(cands, e)
		weights = append(weights, w)
		total += w
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("faultmodel: no substitute candidates for %v", in.Op)
	}
	pick := uint64(p.BitPatternValue * float64(total))
	sub := cands[len(cands)-1]
	for i, w := range weights {
		if pick < w {
			sub = cands[i]
			break
		}
		pick -= w
	}
	return &opsubInjector{p: p, sub: sub}, nil
}

// opsubInjector corrupts exactly one dynamic execution of the resolved site
// by overwriting its destination with the substitute operation's result.
type opsubInjector struct {
	p   core.TransientParams
	sub subEntry

	counter  uint64
	active   bool
	captured bool // the pending execution contains the target lane
	lane     int
	src      [3]uint32
	rec      core.InjectionRecord
}

var _ nvbit.Tool = (*opsubInjector)(nil)

func (o *opsubInjector) Name() string                 { return "opsub_injector" }
func (o *opsubInjector) Record() core.InjectionRecord { return o.rec }
func (o *opsubInjector) Activations() uint64          { return 0 }

func (o *opsubInjector) OnLaunch(info *nvbit.LaunchInfo) nvbit.Decision {
	if info.Kernel.Name != o.p.KernelName || info.LaunchIndex != o.p.KernelCount {
		return nvbit.RunOriginal
	}
	o.active = true
	o.counter = 0
	return nvbit.Decision{Instrument: true, Key: fmt.Sprintf("opsub:%v@%d", o.sub.op, o.p.StaticInstrIdx)}
}

func (o *opsubInjector) Instrument(k *sass.Kernel, _ string, ins *nvbit.Inserter) {
	i := o.p.StaticInstrIdx
	if i >= len(k.Instrs) {
		return
	}
	// The sources must be read before the instruction executes (the
	// destination may alias a source); the substitute result is written
	// after, replacing the native one.
	ins.InsertBefore(i, o.before)
	ins.InsertAfter(i, o.after)
}

// before decides whether this execution contains the target and, if so,
// captures the source operand values of the target lane.
func (o *opsubInjector) before(c *gpu.InstrCtx) {
	if !o.active || o.rec.Activated {
		return
	}
	n := uint64(c.LaneCount())
	if o.counter+n <= o.p.InstrCount {
		return
	}
	k := o.p.InstrCount - o.counter
	for lane := 0; lane < gpu.WarpSize; lane++ {
		if !c.LaneActive(lane) {
			continue
		}
		if k > 0 {
			k--
			continue
		}
		o.lane = lane
		o.src = [3]uint32{}
		j := 0
		for si := range c.Instr.Src {
			if j >= len(o.src) {
				break
			}
			switch s := &c.Instr.Src[si]; s.Kind {
			case sass.OpdReg:
				o.src[j] = c.ReadReg(lane, s.Reg)
				j++
			case sass.OpdImm:
				o.src[j] = s.Imm
				j++
			}
		}
		o.captured = true
		return
	}
}

// after advances the countdown and, when the target execution just ran,
// replaces its destination with the substitute result.
func (o *opsubInjector) after(c *gpu.InstrCtx) {
	if !o.active || o.rec.Activated {
		return
	}
	o.counter += uint64(c.LaneCount())
	if !o.captured {
		return
	}
	o.captured = false
	o.rec = core.InjectionRecord{
		Activated: true,
		Kernel:    c.Kernel.Name,
		InstrIdx:  o.p.StaticInstrIdx,
		Opcode:    c.Instr.Op,
		SMID:      c.SMID,
		BlockLin:  c.BlockLin,
		WarpID:    c.WarpID,
		Lane:      o.lane,
	}
	var dst sass.RegID
	found := false
	for i := range c.Instr.Dst {
		if d := &c.Instr.Dst[i]; d.Kind == sass.OpdReg && d.Reg != sass.RZ {
			dst, found = d.Reg, true
			break
		}
	}
	if !found {
		o.rec.NoDestination = true
		c.Disarm()
		return
	}
	before := c.ReadReg(o.lane, dst)
	after := o.sub.fn(o.src[0], o.src[1], o.src[2])
	c.WriteReg(o.lane, dst, after)
	o.rec.Target = dst.String()
	o.rec.Before = before
	o.rec.After = after
	o.rec.Mask = before ^ after
	c.Disarm()
}

func (o *opsubInjector) OnLaunchDone(info *nvbit.LaunchInfo, _ gpu.LaunchStats, _ *gpu.Trap, _ bool) {
	if o.active && info.Kernel != nil && info.Kernel.Name == o.p.KernelName &&
		info.LaunchIndex == o.p.KernelCount {
		o.active = false
	}
}
