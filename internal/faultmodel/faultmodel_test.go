package faultmodel

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sass"
)

// TestRegistry: the registry holds exactly the five models, Lookup resolves
// the empty name to the default, and unknown names fail with the inventory.
func TestRegistry(t *testing.T) {
	want := []string{"memfault", "opsub", "predflip", "stuck", "transient"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	m, err := Lookup("")
	if err != nil || m.Name() != DefaultName {
		t.Fatalf("Lookup(\"\") = %v, %v; want the default model", m, err)
	}
	for _, name := range want {
		m, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, m.Name())
		}
		if m.Description() == "" {
			t.Fatalf("model %q has no description", name)
		}
	}
	if _, err := Lookup("nosuch"); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("Lookup(nosuch) = %v, want unknown-model error", err)
	}
	if !IsDefault("") || !IsDefault(DefaultName) || IsDefault("stuck") {
		t.Fatal("IsDefault misclassifies")
	}
}

// TestCapsMatrix: the transient destination flip supports every acceleration;
// every other model supports none — the soundness boundary the campaign layer
// enforces.
func TestCapsMatrix(t *testing.T) {
	all := CapPrune | CapClasses | CapCheckpoint | CapEarlyExit | CapCertainStrata
	tr, _ := Lookup(DefaultName)
	if tr.Caps() != all {
		t.Fatalf("transient caps = %b, want all", tr.Caps())
	}
	for _, name := range []string{"stuck", "opsub", "predflip", "memfault"} {
		m, _ := Lookup(name)
		if m.Caps() != 0 {
			t.Fatalf("%s caps = %b, want none", name, m.Caps())
		}
		if m.Caps().Has(CapPrune) || m.Caps().Has(CapCheckpoint) {
			t.Fatalf("%s claims a destination-flip acceleration", name)
		}
	}
	if !all.Has(CapPrune | CapCertainStrata) {
		t.Fatal("Caps.Has rejects a present subset")
	}
	if Caps(0).Has(CapPrune) {
		t.Fatal("Caps.Has accepts an absent capability")
	}
}

// TestEligibility: each model's opcode filter matches its physics.
func TestEligibility(t *testing.T) {
	iadd := sass.MustOp("IADD3")
	isetp := sass.MustOp("ISETP")
	ldg := sass.MustOp("LDG")
	stg := sass.MustOp("STG")
	cases := []struct {
		model string
		op    sass.Op
		want  bool
	}{
		{"transient", stg, true}, // scoped by group, not by the model
		{"stuck", iadd, true},
		{"stuck", stg, false}, // no destination to stick
		{"opsub", iadd, true},
		{"opsub", isetp, false}, // no GP destination to substitute into
		{"opsub", ldg, false},   // loads have no substitutable ALU semantic
		{"predflip", isetp, true},
		{"predflip", iadd, false}, // writes no predicate
		{"memfault", ldg, true},
		{"memfault", stg, false}, // arms at loads only
	}
	for _, tc := range cases {
		m, _ := Lookup(tc.model)
		if got := m.EligibleOp(tc.op); got != tc.want {
			t.Errorf("%s.EligibleOp(%v) = %v, want %v", tc.model, tc.op, got, tc.want)
		}
	}
}

// TestValidateParam: each model's parameter vocabulary fails fast on typos,
// out-of-range values, and malformed strings.
func TestValidateParam(t *testing.T) {
	cases := []struct {
		model, param string
		ok           bool
	}{
		{"transient", "", true},
		{"transient", "value=1", false}, // no parameters at all
		{"opsub", "", true},
		{"opsub", "weighted=1", false},
		{"stuck", "", true},
		{"stuck", "value=0", true},
		{"stuck", "value=1,bit=17", true},
		{"stuck", "value=2", false},
		{"stuck", "bit=32", false},
		{"stuck", "p=0.25", true},
		{"stuck", "p=1.5", false},
		{"stuck", "burst=4/64", true},
		{"stuck", "burst=64/4", false},        // LEN > PERIOD
		{"stuck", "burst=x/4", false},         // not numbers
		{"stuck", "p=0.25,burst=4/64", false}, // gates are mutually exclusive
		{"stuck", "value", false},             // not key=value
		{"stuck", "bit=3,bit=4", false},       // duplicate key
		{"stuck", "lane=3", false},            // unknown key
		{"predflip", "", true},
		{"predflip", "guard=1", true},
		{"predflip", "guard=2", false},
		{"memfault", "", true},
		{"memfault", "value=0,bit=7", true},
		{"memfault", "bit=40", false},
		{"memfault", "p=0.5", false},
	}
	for _, tc := range cases {
		m, err := Lookup(tc.model)
		if err != nil {
			t.Fatal(err)
		}
		err = m.ValidateParam(tc.param)
		if (err == nil) != tc.ok {
			t.Errorf("%s.ValidateParam(%q) = %v, want ok=%v", tc.model, tc.param, err, tc.ok)
		}
	}
}

// TestParamHashDeterminism: the coordinate derivation is a pure function of
// the tuple's discrete identity — equal tuples hash equal, any identity field
// change moves the hash.
func TestParamHashDeterminism(t *testing.T) {
	base := core.TransientParams{
		KernelName: "k", KernelCount: 2, InstrCount: 100,
		SiteResolved: true, StaticInstrIdx: 7,
	}
	if paramHash(base) != paramHash(base) {
		t.Fatal("paramHash is not deterministic")
	}
	variants := []core.TransientParams{base, base, base, base}
	variants[1].KernelName = "k2"
	variants[2].KernelCount = 3
	variants[3].StaticInstrIdx = 8
	seen := map[uint64]int{}
	for i, v := range variants {
		h := paramHash(v)
		if j, dup := seen[h]; dup {
			t.Fatalf("variants %d and %d collide (%#x)", j, i, h)
		}
		seen[h] = i
	}
	// The unit floats must NOT move the hash: they map onto coordinates
	// directly, and the hash seeds the streams that complement them.
	moved := base
	moved.DestRegSelect = 0.9
	if paramHash(moved) != paramHash(base) {
		t.Fatal("paramHash depends on the unit floats")
	}
}

// TestSplitmix64: the mixer matches the reference splitmix64 sequence shape —
// distinct inputs, distinct well-mixed outputs, zero maps away from zero.
func TestSplitmix64(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		v := splitmix64(i)
		if seen[v] {
			t.Fatalf("splitmix64 collision at input %d", i)
		}
		seen[v] = true
	}
	if splitmix64(0) == 0 {
		t.Fatal("splitmix64(0) = 0")
	}
}

// TestInjectorRequiresSiteResolution: model injectors refuse parameter tuples
// that were not site-resolved — they cannot locate a static instruction.
func TestInjectorRequiresSiteResolution(t *testing.T) {
	env := Env{Family: sass.FamilyVolta, NumSMs: 4, Kernels: map[string]*sass.Kernel{}}
	p := core.TransientParams{KernelName: "k"} // SiteResolved false
	for _, name := range []string{"stuck", "opsub", "predflip", "memfault"} {
		m, _ := Lookup(name)
		if _, err := m.NewInjector(p, "", env); err == nil {
			t.Errorf("%s.NewInjector accepted non-site-resolved params", name)
		}
	}
}
