package nvbitfi_test

import (
	"context"
	"fmt"
	"math/rand"

	"repro"
)

// ExampleSelectTransientFault shows the Figure 1 fault-selection step: a
// profile defines the uniform distribution of dynamic instructions, and a
// seeded draw picks one, expressed as the paper's parameter tuple.
func ExampleSelectTransientFault() {
	w, err := nvbitfi.SpecACCELProgram("314.omriq")
	if err != nil {
		panic(err)
	}
	r := nvbitfi.Runner{}
	profile, _, err := r.Profile(w, nvbitfi.Exact)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(6))
	params, err := nvbitfi.SelectTransientFault(profile, nvbitfi.GroupFP32,
		nvbitfi.FlipSingleBit, rng)
	if err != nil {
		panic(err)
	}
	fmt.Printf("group=%v model=%v kernel=%s launch=%d\n",
		params.Group, params.BitFlip, params.KernelName, params.KernelCount)
	// Output:
	// group=G_FP32 model=FLIP_SINGLE_BIT kernel=compute_q launch=0
}

// ExampleRunner_RunTransient runs one complete injection experiment.
func ExampleRunner_RunTransient() {
	w, err := nvbitfi.SpecACCELProgram("314.omriq")
	if err != nil {
		panic(err)
	}
	r := nvbitfi.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		panic(err)
	}
	params := nvbitfi.TransientParams{
		Group:           nvbitfi.GroupGP,
		BitFlip:         nvbitfi.ZeroValue,
		KernelName:      "compute_phi_mag",
		KernelCount:     0,
		InstrCount:      100,
		DestRegSelect:   0.5,
		BitPatternValue: 0.5,
	}
	res, err := r.RunTransient(context.Background(), w, golden, params)
	if err != nil {
		panic(err)
	}
	fmt.Printf("activated=%v outcome=%v\n", res.Injection.Activated, res.Class.Outcome)
	// Output:
	// activated=true outcome=SDC
}

// ExampleMarginOfError reproduces the paper's statistics sentence: 100
// injections give 90% confidence with ±8% margins; 1000 give 95% with ±3%.
func ExampleMarginOfError() {
	m100, err := nvbitfi.MarginOfError(100, 0.90)
	if err != nil {
		panic(err)
	}
	m1000, err := nvbitfi.MarginOfError(1000, 0.95)
	if err != nil {
		panic(err)
	}
	fmt.Printf("100 injections, 90%% confidence: +-%.0f%%\n", 100*m100)
	fmt.Printf("1000 injections, 95%% confidence: +-%.0f%%\n", 100*m1000)
	// Output:
	// 100 injections, 90% confidence: +-8%
	// 1000 injections, 95% confidence: +-3%
}

// ExampleOpcodeCount pins the paper's Volta ISA size.
func ExampleOpcodeCount() {
	fmt.Println(nvbitfi.OpcodeCount(nvbitfi.Volta))
	// Output:
	// 171
}
