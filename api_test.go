package nvbitfi_test

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro"
)

// TestPublicAPIQuickstart drives the documented Figure 1 flow entirely
// through the public facade.
func TestPublicAPIQuickstart(t *testing.T) {
	w, err := nvbitfi.SpecACCELProgram("314.omriq")
	if err != nil {
		t.Fatal(err)
	}
	r := nvbitfi.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, nvbitfi.Exact)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	params, err := nvbitfi.SelectTransientFault(profile, nvbitfi.GroupGPPR, nvbitfi.FlipSingleBit, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunTransient(context.Background(), w, golden, *params)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injection.Activated {
		t.Fatal("fault did not activate")
	}
	switch res.Class.Outcome {
	case nvbitfi.Masked, nvbitfi.SDC, nvbitfi.DUE:
	default:
		t.Fatalf("unclassified outcome: %+v", res.Class)
	}
}

func TestPublicAPICatalog(t *testing.T) {
	if got := len(nvbitfi.SpecACCEL()); got != 15 {
		t.Fatalf("suite size = %d", got)
	}
	if got := len(nvbitfi.SpecACCELNames()); got != 15 {
		t.Fatalf("names = %d", got)
	}
	if got := len(nvbitfi.SpecACCELInfos()); got != 15 {
		t.Fatalf("infos = %d", got)
	}
	if got := nvbitfi.OpcodeCount(nvbitfi.Volta); got != 171 {
		t.Fatalf("Volta opcodes = %d, want 171", got)
	}
	for _, f := range []nvbitfi.Family{nvbitfi.Kepler, nvbitfi.Maxwell, nvbitfi.Pascal, nvbitfi.Ampere} {
		if nvbitfi.OpcodeCount(f) == 0 {
			t.Fatalf("family %v has no opcodes", f)
		}
	}
	m, err := nvbitfi.MarginOfError(100, 0.90)
	if err != nil || math.Abs(m-0.08) > 0.005 {
		t.Fatalf("MarginOfError = %v, %v", m, err)
	}
	if _, err := nvbitfi.SpecACCELProgram("nope"); err == nil ||
		!strings.Contains(err.Error(), "unknown program") {
		t.Fatalf("unknown program: %v", err)
	}
}

// TestPublicAPIProfilerAttach uses the raw Attach path: profile the AV
// pipeline through the facade without the Runner convenience.
func TestPublicAPIProfilerAttach(t *testing.T) {
	dev, err := nvbitfi.NewDevice(nvbitfi.Volta, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := nvbitfi.NewContext(dev)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetDefaultBudget(1 << 30)
	prof, err := nvbitfi.NewProfiler("av.pipeline", nvbitfi.Approximate)
	if err != nil {
		t.Fatal(err)
	}
	detach, err := nvbitfi.Attach(ctx, prof)
	if err != nil {
		t.Fatal(err)
	}
	defer detach()
	pipeline := nvbitfi.NewAVPipeline(nvbitfi.AVConfig{Frames: 2})
	if _, err := pipeline.Run(ctx); err != nil {
		t.Fatal(err)
	}
	profile := prof.Finish()
	// 5 kernels per frame x 2 frames.
	if got := profile.DynamicKernels(); got != 10 {
		t.Fatalf("dynamic kernels = %d, want 10", got)
	}
	if got := len(profile.StaticKernels()); got != 5 {
		t.Fatalf("static kernels = %d, want 5", got)
	}
	// The binary-only vendor kernels are profiled like any others.
	joined := strings.Join(profile.StaticKernels(), ",")
	if !strings.Contains(joined, "conv1d") || !strings.Contains(joined, "score") {
		t.Fatalf("vendor kernels missing from profile: %s", joined)
	}
}

// TestPublicAPICampaigns runs miniature transient and permanent campaigns
// through the facade.
func TestPublicAPICampaigns(t *testing.T) {
	w, err := nvbitfi.SpecACCELProgram("314.omriq")
	if err != nil {
		t.Fatal(err)
	}
	r := nvbitfi.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := r.Profile(w, nvbitfi.Exact)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := nvbitfi.RunTransientCampaign(context.Background(), r, w, golden, profile, nvbitfi.TransientCampaignConfig{
		Injections: 8,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tc.Tally.N != 8 {
		t.Fatalf("transient campaign ran %d", tc.Tally.N)
	}
	pc, err := nvbitfi.RunPermanentCampaign(context.Background(), r, w, golden, profile, nvbitfi.RandomValue, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Runs) != len(profile.ExecutedOpcodes()) {
		t.Fatalf("permanent campaign ran %d of %d opcodes",
			len(pc.Runs), len(profile.ExecutedOpcodes()))
	}
	if pc.Weighted == nil || pc.Weighted.Total() == 0 {
		t.Fatal("permanent campaign has no weighted outcomes")
	}
}
