// Command sassdis assembles, disassembles, and inspects kernels across the
// five architecture-family binary encodings — the nvdisasm/cuobjdump
// analog. It demonstrates the encoding abstraction the NVBit layer relies
// on: the same program round-trips through every family's machine code.
//
// Usage:
//
//	sassdis -in kernel.sass [-family volta] [-hex] [-stats] [-lint]
//	sassdis -demo
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/sass"
	"repro/internal/sass/encoding"
	"repro/internal/sassan"
)

const demoSrc = `
.kernel saxpy
.param n
.param a
.param xptr
.param yptr
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    MOV R2, c0[NTID_X]
    IMAD R0, R1, R2, R0
    ISETP.GE.AND P0, R0, c0[n], PT
@P0 EXIT
    SHL R3, R0, 0x2
    IADD R4, R3, c0[xptr]
    IADD R5, R3, c0[yptr]
    LDG.32 R6, [R4]
    LDG.32 R7, [R5]
    MOV R8, c0[a]
    FFMA R9, R8, R6, R7
    STG.32 [R5], R9
    EXIT
`

func main() {
	in := flag.String("in", "", "assembly source file ('-' for stdin)")
	family := flag.String("family", "volta", "architecture family: kepler|maxwell|pascal|volta|ampere")
	hexDump := flag.Bool("hex", false, "dump the encoded machine code")
	stats := flag.Bool("stats", false, "print per-opcode and per-group statistics")
	lint := flag.Bool("lint", false, "run the static verifier over the decoded program")
	demo := flag.Bool("demo", false, "use a built-in SAXPY kernel")
	flag.Parse()

	src := demoSrc
	name := "demo"
	switch {
	case *demo:
	case *in == "-":
		b, err := readAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		src, name = string(b), "stdin"
	case *in != "":
		b, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		src, name = string(b), *in
	default:
		flag.Usage()
		os.Exit(2)
	}

	fam, err := parseFamily(*family)
	if err != nil {
		fatal(err)
	}
	prog, err := sass.Assemble(name, src)
	if err != nil {
		fatal(err)
	}
	codec, err := encoding.NewCodec(fam)
	if err != nil {
		fatal(err)
	}
	bin, err := codec.EncodeProgram(prog)
	if err != nil {
		fatal(err)
	}
	decoded, err := codec.DecodeProgram(bin)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("// module %s, %s machine code: %d bytes, %d kernel(s)\n",
		prog.Name, fam, len(bin), len(decoded.Kernels))
	fmt.Print(sass.Disassemble(decoded))

	if *hexDump {
		fmt.Println("\n// machine code:")
		for off := 0; off < len(bin); off += 16 {
			end := off + 16
			if end > len(bin) {
				end = len(bin)
			}
			fmt.Printf("%08x  % x\n", off, bin[off:end])
		}
	}
	if *stats {
		printStats(decoded, fam)
	}
	if *lint {
		// Lint the decoded view — the same machine-code-derived program the
		// instrumentation layer sees, not the source text.
		diags := sassan.VerifyProgram(decoded)
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		if sassan.HasErrors(diags) {
			os.Exit(1)
		}
		fmt.Printf("// lint: %d warning(s), 0 errors\n", sassan.CountWarnings(diags))
	}
}

func printStats(p *sass.Program, fam sass.Family) {
	fmt.Printf("\n// family %v implements %d opcodes\n", fam, sass.OpcodeCount(fam))
	for _, k := range p.Kernels {
		groups := make(map[sass.Group]int)
		for i := range k.Instrs {
			groups[sass.ClassOf(k.Instrs[i].Op)]++
		}
		fmt.Printf("// kernel %s: %d instructions;", k.Name, len(k.Instrs))
		for _, g := range sass.PrimaryGroups() {
			if groups[g] > 0 {
				fmt.Printf(" %v=%d", g, groups[g])
			}
		}
		fmt.Println()
	}
}

func parseFamily(s string) (sass.Family, error) {
	for _, f := range sass.Families() {
		if strings.EqualFold(f.String(), s) {
			return f, nil
		}
	}
	return 0, fmt.Errorf("unknown family %q", s)
}

func readAll(f *os.File) ([]byte, error) {
	var out []byte
	buf := make([]byte, 4096)
	for {
		n, err := f.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			if err.Error() == "EOF" {
				return out, nil
			}
			return out, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sassdis:", err)
	os.Exit(1)
}
