// Command specaccel runs the SpecACCEL benchmark analogs standalone: a
// golden (fault-free) run of one or all programs, printing their output and
// execution statistics. It is the "target program" side of the injection
// flow — what NVBitFI would be LD_PRELOADed into.
//
// Usage:
//
//	specaccel -list
//	specaccel -run 303.ostencil [-show-output]
//	specaccel -run all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	list := flag.Bool("list", false, "list the benchmark programs (Table IV)")
	run := flag.String("run", "", "program to run ('all' for the whole suite)")
	showOutput := flag.Bool("show-output", false, "print the program's stdout")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-14s %-46s %11s %12s %12s\n",
			"Program", "Description", "Static", "Paper-dyn", "Scaled-dyn")
		for _, info := range nvbitfi.SpecACCELInfos() {
			fmt.Printf("%-14s %-46s %11d %12d %12d\n",
				info.Name, info.Description, info.PaperStaticKernels,
				info.PaperDynamicKernels, info.ScaledDynamicKernels)
		}
	case *run == "all":
		for _, w := range nvbitfi.SpecACCEL() {
			if err := runOne(w, *showOutput); err != nil {
				fatal(err)
			}
		}
	case *run != "":
		w, err := nvbitfi.SpecACCELProgram(*run)
		if err != nil {
			fatal(err)
		}
		if err := runOne(w, *showOutput); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(w nvbitfi.Workload, showOutput bool) error {
	r := nvbitfi.Runner{}
	g, err := r.Golden(w)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s ok in %8v  (%d blocks, %d warp instrs, %d thread instrs)\n",
		w.Name(), g.Duration.Round(time.Millisecond), g.Stats.Blocks,
		g.Stats.WarpInstrs, g.Stats.ThreadInstrs)
	if showOutput {
		fmt.Print(g.Output.Stdout)
		for name, data := range g.Output.Files {
			fmt.Printf("  [file %s: %d bytes]\n", name, len(data))
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specaccel:", err)
	os.Exit(1)
}
