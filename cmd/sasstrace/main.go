// Command sasstrace is an NVBit-style dynamic instruction tracer — the
// classic "other" NVBit tool beside the fault injector. It attaches to a
// benchmark program, instruments one kernel, and streams the first N
// dynamic warp instructions with their exec masks and destination values.
// It demonstrates that the DBI layer underneath NVBitFI is a general
// instrumentation framework, exactly as the paper positions NVBit.
//
// Usage:
//
//	sasstrace -program 303.ostencil -kernel stencil_step [-launch 0] [-n 40]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/gpu"
	"repro/internal/nvbit"
	"repro/internal/sass"
)

func main() {
	program := flag.String("program", "303.ostencil", "target program name")
	kernel := flag.String("kernel", "", "kernel to trace (default: first launched)")
	launch := flag.Int("launch", 0, "dynamic instance of the kernel to trace")
	n := flag.Int("n", 40, "number of warp instructions to print")
	flag.Parse()

	w, err := nvbitfi.SpecACCELProgram(*program)
	if err != nil {
		fatal(err)
	}
	dev, err := nvbitfi.NewDevice(nvbitfi.Volta, 8)
	if err != nil {
		fatal(err)
	}
	ctx, err := nvbitfi.NewContext(dev)
	if err != nil {
		fatal(err)
	}
	ctx.SetDefaultBudget(1 << 32)

	tr := &tracer{kernel: *kernel, launch: *launch, limit: *n}
	detach, err := nvbitfi.Attach(ctx, tr)
	if err != nil {
		fatal(err)
	}
	defer detach()

	if _, err := w.Run(ctx); err != nil {
		fatal(err)
	}
	if tr.printed == 0 {
		fmt.Fprintf(os.Stderr, "sasstrace: kernel %q instance %d never launched\n",
			*kernel, *launch)
		os.Exit(1)
	}
	fmt.Printf("... traced %d warp instructions of %s (instance %d)\n",
		tr.printed, tr.traced, tr.launch)
}

// tracer is the NVBit tool: it instruments every instruction of the target
// dynamic kernel and prints execution events until the limit is reached.
type tracer struct {
	kernel  string
	launch  int
	limit   int
	printed int
	traced  string
	active  bool
}

var _ nvbit.Tool = (*tracer)(nil)

func (t *tracer) Name() string { return "sasstrace" }

func (t *tracer) OnLaunch(info *nvbit.LaunchInfo) nvbit.Decision {
	if t.kernel == "" {
		t.kernel = info.Kernel.Name
	}
	if info.Kernel.Name != t.kernel || info.LaunchIndex != t.launch {
		return nvbit.RunOriginal
	}
	t.active = true
	t.traced = info.Kernel.Name
	fmt.Printf("tracing %s instance %d: grid %v block %v, %d instructions\n",
		info.Kernel.Name, info.LaunchIndex, info.Config.Grid, info.Config.Block,
		len(info.Kernel.Instrs))
	fmt.Printf("%-5s %-4s %-10s %-34s %s\n", "idx", "warp", "execmask", "instruction", "dest(lane0..3)")
	return nvbit.Decision{Instrument: true, Key: "trace"}
}

func (t *tracer) Instrument(k *sass.Kernel, _ string, ins *nvbit.Inserter) {
	for i := range k.Instrs {
		idx := i
		in := k.Instrs[i]
		ins.InsertAfter(i, func(c *gpu.InstrCtx) { t.event(c, idx, &in) })
	}
}

func (t *tracer) event(c *gpu.InstrCtx, idx int, in *sass.Instr) {
	if !t.active || t.printed >= t.limit {
		return
	}
	t.printed++
	dests := ""
	if len(in.Dst) > 0 && in.Dst[0].Kind == sass.OpdReg {
		for lane := 0; lane < 4; lane++ {
			if c.LaneActive(lane) {
				dests += fmt.Sprintf("%08x ", c.ReadReg(lane, in.Dst[0].Reg))
			} else {
				dests += "-------- "
			}
		}
	}
	fmt.Printf("%-5d %-4d 0x%08x %-34s %s\n", idx, c.WarpID, c.ActiveMask, in.String(), dests)
}

func (t *tracer) OnLaunchDone(info *nvbit.LaunchInfo, _ gpu.LaunchStats, _ *gpu.Trap, _ bool) {
	if t.active && info.Kernel != nil && info.Kernel.Name == t.kernel &&
		info.LaunchIndex == t.launch {
		t.active = false
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sasstrace:", err)
	os.Exit(1)
}
