package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/report"
	"repro/internal/sass"
	"repro/internal/serve"
)

// cmdServe runs the campaign coordinator: HTTP API plus an optional
// in-process worker pool, with an on-disk journal so a restart resumes
// unfinished jobs.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	journal := fs.String("journal", "nvbitfi-journal.jsonl", "job journal path ('' disables persistence)")
	workers := fs.Int("workers", 0, "in-process workers to run alongside the coordinator")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "shard lease TTL")
	maxAttempts := fs.Int("max-attempts", 3, "attempts before a shard is quarantined")
	backoff := fs.Duration("retry-backoff", 500*time.Millisecond, "base retry backoff (doubles per attempt)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	coord, err := serve.NewCoordinator(serve.Options{
		JournalPath:  *journal,
		LeaseTTL:     *leaseTTL,
		MaxAttempts:  *maxAttempts,
		RetryBackoff: *backoff,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewServer(coord)}
	log.Printf("nvbitfi serve: listening on http://%s (journal %s, %d local workers)",
		ln.Addr(), *journal, *workers)

	// Sweep expired leases even while no worker is polling, so status
	// requests see reclaims promptly.
	go func() {
		t := time.NewTicker(*leaseTTL / 2)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				coord.ReclaimTick()
			}
		}
	}()

	var pool interface{ Wait() }
	if *workers > 0 {
		pool = serve.Pool(ctx, coord, campaign.Runner{}, *workers, log.Printf)
	}
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()
	err = srv.Serve(ln)
	if pool != nil {
		pool.Wait()
	}
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// cmdWorker runs a remote worker against a coordinator.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	coordinator := fs.String("coordinator", "http://127.0.0.1:8077", "coordinator base URL")
	name := fs.String("name", "", "worker name (for events and logs)")
	deviceWorkers := fs.Int("device-workers", 0, "per-device block-parallel workers for uninstrumented launches")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := &serve.Worker{
		Backend: serve.NewClient(*coordinator),
		Runner:  campaign.Runner{Workers: *deviceWorkers},
		Name:    *name,
		Logf:    log.Printf,
	}
	log.Printf("nvbitfi worker: serving %s", *coordinator)
	err := w.Run(ctx)
	if ctx.Err() != nil {
		return nil // clean shutdown
	}
	return err
}

// cmdSubmit submits a campaign to a coordinator and follows its progress.
func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	coordinator := fs.String("coordinator", "http://127.0.0.1:8077", "coordinator base URL")
	program := fs.String("program", "", "target program name")
	n := fs.Int("n", 100, "number of transient injections")
	group := fs.String("group", "G_GPPR", "instruction group")
	bitflip := fs.Int("bitflip", 1, "bit-flip model 1..4")
	seed := fs.Int64("seed", 1, "campaign seed")
	shardSize := fs.Int("shard-size", 0, "experiments per shard (0 = default; part of the campaign's identity)")
	prune := fs.Bool("prune", false, "statically prune provably-dead injections")
	classes := fs.Bool("classes", false, "class-representative sampling: one experiment per fault-equivalence class per shard")
	targetCI := fs.Float64("target-ci", 0, "adaptive sampling: stop once the stratified SDC-share interval half-width is at most this (0 = fixed-count job)")
	confidence := fs.Float64("confidence", 0.95, "confidence level for -target-ci")
	maxN := fs.Int("max-n", 0, "with -target-ci, the selection budget cap (0 = -n)")
	ckpt := fs.Bool("ckpt", false, "checkpoint-and-fork experiment engine")
	ckptStride := fs.Uint64("ckpt-stride", 0, "checkpoint stride in warp instructions")
	noEarlyExit := fs.Bool("no-early-exit", false, "with -ckpt, disable early-exit classification")
	xlate := fs.Bool("xlate", true, "run experiments on the block-level translation engine")
	noXlate := fs.Bool("no-xlate", false, "force the legacy interpreter (same as -xlate=false)")
	model := fs.String("model", "", "fault model (see 'nvbitfi models'; default transient)")
	modelParam := fs.String("model-param", "", "fault-model parameter string (key=value,...)")
	noWait := fs.Bool("no-wait", false, "submit and print the job id without following progress")
	jsonOut := fs.Bool("json", false, "print the final tally as stable JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := sass.ParseGroup(*group)
	if err != nil {
		return err
	}
	spec := serve.CampaignSpec{
		Schema:   serve.JobSchema,
		Workload: *program,
		Config: nvbitfi.TransientCampaignConfig{
			Injections: *n, Group: g, BitFlip: nvbitfi.BitFlipModel(*bitflip), Seed: *seed,
			ShardSize: *shardSize, Prune: *prune, Classes: *classes,
			Checkpoint: *ckpt, CkptStride: *ckptStride, NoEarlyExit: *noEarlyExit,
			NoXlate: *noXlate || !*xlate,
		},
	}
	// Adaptive jobs speak the v2 schema; fixed-count specs stay byte-for-byte
	// on v1 so older coordinators keep accepting them.
	if *targetCI > 0 {
		spec.Schema = serve.JobSchemaV2
		spec.Config.TargetCI = *targetCI
		spec.Config.Confidence = *confidence
		spec.Config.MaxInjections = *maxN
	}
	// Non-default fault models speak the v3 schema (which also carries the
	// adaptive fields, so it wins over v2 when both apply). The default
	// transient model keeps the spec on v1/v2 untouched.
	if *model != "" && *model != "transient" {
		spec.Schema = serve.JobSchemaV3
		spec.Config.Model = *model
		spec.Config.ModelParam = *modelParam
	} else if *modelParam != "" {
		return fmt.Errorf("submit: -model-param requires a non-default -model")
	}
	client := serve.NewClient(*coordinator)
	st, err := client.Submit(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "submitted %s: %s over %d shards (golden %.12s)\n",
		st.Workload, st.ID, st.NumShards, st.GoldenDigest)
	if *noWait {
		fmt.Println(st.ID)
		return nil
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	final, err := client.Watch(ctx, st.ID, 0, func(ev serve.Event) {
		switch ev.Type {
		case "shard":
			line := fmt.Sprintf("shard %d %s (attempt %d, %d/%d done)",
				ev.Shard, ev.State, ev.Attempt, ev.Done, ev.NumShards)
			if ev.Reason != "" {
				line += ": " + ev.Reason
			}
			if ev.Tally != nil {
				line += " — " + ev.Tally.String()
			}
			fmt.Fprintln(os.Stderr, line)
		case "job":
			if ev.State == serve.EventConverged {
				fmt.Fprintf(os.Stderr, "job converged at shard %d (%d/%d shards run)\n",
					ev.Shard, ev.Done, ev.NumShards)
				break
			}
			fmt.Fprintf(os.Stderr, "job %s (%d/%d shards)\n", ev.State, ev.Done, ev.NumShards)
		}
	})
	if err != nil {
		return err
	}
	res := &campaign.CampaignResult{
		Program: final.Workload, Tally: final.Tally,
		Translated: !final.Config.NoXlate,
		Model:      final.Config.Model, ModelParam: final.Config.ModelParam,
	}
	// An adaptive job's status carries everything the statistical report
	// block needs; reconstruct the result the in-process runner would
	// return. The spec stores the config as submitted, so apply the same
	// defaults the runner would (budget = Injections, confidence = 0.95).
	if final.Config.TargetCI > 0 {
		maxInj := final.Config.MaxInjections
		if maxInj == 0 {
			maxInj = final.Config.Injections
		}
		conf := final.Config.Confidence
		if conf == 0 {
			conf = campaign.DefaultConfidence
		}
		res.Adaptive = &campaign.AdaptiveResult{
			TargetCI:      final.Config.TargetCI,
			Confidence:    conf,
			MaxInjections: maxInj,
			Converged:     final.Converged,
			StopShard:     final.StopShard,
			AchievedCI:    final.AchievedCI,
			Strata:        final.Strata,
		}
	}
	if *jsonOut {
		return report.WriteSummaryJSON(os.Stdout, res)
	}
	fmt.Printf("%s: %d runs, %s", final.Workload, final.Tally.N, final.Tally)
	if final.Tally.Pruned > 0 {
		fmt.Printf(", %d statically pruned", final.Tally.Pruned)
	}
	if final.Tally.ClassReps > 0 || final.Tally.ClassAnswered > 0 {
		fmt.Printf(", %d class reps answered %d members",
			final.Tally.ClassReps, final.Tally.ClassAnswered)
	}
	if final.Tally.Restored > 0 {
		fmt.Printf(", %d restored from checkpoints (%d early exits)",
			final.Tally.Restored, final.Tally.EarlyExits)
	}
	if final.Converged {
		fmt.Printf(", converged at shard %d (achieved ±%.4f, %d shards skipped)",
			final.StopShard, final.AchievedCI, final.Skipped)
	}
	fmt.Println()
	if final.State != serve.JobDone {
		return fmt.Errorf("job settled %s with %d quarantined shards", final.State, final.Quarantined)
	}
	return nil
}
