// Command nvbitfi is the campaign CLI, the analog of the NVBitFI package's
// convenience scripts: it profiles a target program, selects faults,
// injects them, classifies outcomes, and runs whole campaigns.
//
// Usage:
//
//	nvbitfi profile   -program 303.ostencil [-mode exact|approx] [-o profile.txt]
//	nvbitfi select    -profile profile.txt [-group G_GPPR] [-bitflip 1] [-seed 1] [-o params.txt]
//	nvbitfi inject    -program 303.ostencil -params params.txt
//	nvbitfi pf-inject -program 303.ostencil -sm 0 -lane 3 -mask 0x400 -opcode 12
//	nvbitfi campaign  -program 303.ostencil [-n 100] [-mode exact|approx] [-group G_GPPR] [-seed 1] [-prune] [-classes] [-target-ci 0.02 [-confidence 0.95] [-max-n N]] [-ckpt [-ckpt-stride N] [-no-early-exit]] [-verify]
//	nvbitfi profdiff  -a exact.txt -b approx.txt [-group G_GPPR] [-min 0.01]
//	nvbitfi report    -table1 | -table4
//	nvbitfi serve     [-addr 127.0.0.1:8077] [-journal nvbitfi-journal.jsonl] [-workers N]
//	nvbitfi worker    [-coordinator http://host:8077] [-name NAME]
//	nvbitfi submit    -program 303.ostencil [-coordinator URL] [-n 100] [-seed 1] [-prune] [-classes] [-target-ci 0.02] [-ckpt] [-json]
//	nvbitfi list
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/modcache"
	"repro/internal/nvbit"
	"repro/internal/report"
	"repro/internal/sass"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "select":
		err = cmdSelect(os.Args[2:])
	case "inject":
		err = cmdInject(os.Args[2:])
	case "pf-inject":
		err = cmdPFInject(os.Args[2:])
	case "campaign":
		err = cmdCampaign(os.Args[2:])
	case "profdiff":
		err = cmdProfDiff(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "list":
		err = cmdList()
	case "models":
		err = cmdModels()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvbitfi:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: nvbitfi <profile|select|inject|pf-inject|campaign|profdiff|report|serve|worker|submit|list|models> [flags]
run "nvbitfi <subcommand> -h" for subcommand flags`)
}

// cmdModels lists the registered fault models with their default group and
// which campaign accelerations each supports.
func cmdModels() error {
	for _, name := range nvbitfi.FaultModels() {
		m, err := nvbitfi.LookupFaultModel(name)
		if err != nil {
			return err
		}
		def := ""
		if name == "transient" {
			def = " (default)"
		}
		fmt.Printf("%-10s%s %s\n", name, def, m.Description())
		fmt.Printf("          group=%v prune=%v classes=%v checkpoint=%v\n",
			m.DefaultGroup(),
			m.Caps().Has(nvbitfi.CapPrune),
			m.Caps().Has(nvbitfi.CapClasses),
			m.Caps().Has(nvbitfi.CapCheckpoint))
	}
	return nil
}

func lookupProgram(name string) (nvbitfi.Workload, error) {
	if name == "av.pipeline" {
		return nvbitfi.NewAVPipeline(nvbitfi.AVConfig{}), nil
	}
	return nvbitfi.SpecACCELProgram(name)
}

func parseMode(s string) (nvbitfi.ProfileMode, error) {
	switch s {
	case "exact":
		return nvbitfi.Exact, nil
	case "approx", "approximate":
		return nvbitfi.Approximate, nil
	default:
		return 0, fmt.Errorf("unknown profiling mode %q (want exact or approx)", s)
	}
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	program := fs.String("program", "", "target program name")
	mode := fs.String("mode", "exact", "profiling mode: exact or approx")
	out := fs.String("o", "", "output file (default stdout)")
	xlate := fs.Bool("xlate", true, "run launches on the block-level translation engine")
	noXlate := fs.Bool("no-xlate", false, "force the legacy interpreter (same as -xlate=false)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := lookupProgram(*program)
	if err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	r := nvbitfi.Runner{NoXlate: *noXlate || !*xlate}
	profile, dur, err := r.Profile(w, m)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "profiled %s in %v: %d dynamic kernels, %d static\n",
		w.Name(), dur.Round(time.Millisecond), profile.DynamicKernels(), len(profile.StaticKernels()))
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	_, err = profile.WriteTo(dst)
	return err
}

func cmdSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	profilePath := fs.String("profile", "", "profile file from 'nvbitfi profile'")
	group := fs.String("group", "", "instruction group (arch state id or name; default G_GPPR, or the model's group)")
	bitflip := fs.Int("bitflip", 1, "bit-flip model 1..4")
	seed := fs.Int64("seed", 1, "selection seed")
	model := fs.String("model", "", "fault model to select for (site-resolved, filtered to eligible opcodes)")
	out := fs.String("o", "", "output parameter file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*profilePath)
	if err != nil {
		return err
	}
	defer f.Close()
	profile, err := core.ParseProfile(f)
	if err != nil {
		return err
	}
	var params *nvbitfi.TransientParams
	rng := rand.New(rand.NewSource(*seed))
	if *model != "" && *model != "transient" {
		// Model selection is site-resolved and filtered to the opcodes the
		// model can inject at, exactly as a model campaign selects.
		m, err := nvbitfi.LookupFaultModel(*model)
		if err != nil {
			return err
		}
		g := m.DefaultGroup()
		if *group != "" {
			if g, err = sass.ParseGroup(*group); err != nil {
				return err
			}
		}
		params, err = core.SelectTransientFaultSiteFiltered(profile, g,
			nvbitfi.BitFlipModel(*bitflip), m.EligibleOp, rng)
		if err != nil {
			return err
		}
	} else {
		g := sass.GroupGPPR
		if *group != "" {
			if g, err = sass.ParseGroup(*group); err != nil {
				return err
			}
		}
		params, err = nvbitfi.SelectTransientFault(profile, g, nvbitfi.BitFlipModel(*bitflip), rng)
		if err != nil {
			return err
		}
	}
	dst := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer file.Close()
		dst = file
	}
	_, err = params.WriteTo(dst)
	return err
}

func cmdInject(args []string) error {
	fs := flag.NewFlagSet("inject", flag.ExitOnError)
	program := fs.String("program", "", "target program name")
	paramsPath := fs.String("params", "", "parameter file from 'nvbitfi select'")
	model := fs.String("model", "", "fault model (default transient; see 'nvbitfi models')")
	modelParam := fs.String("model-param", "", "fault-model parameter string, e.g. value=0,bit=17")
	xlate := fs.Bool("xlate", true, "run launches on the block-level translation engine")
	noXlate := fs.Bool("no-xlate", false, "force the legacy interpreter (same as -xlate=false)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := lookupProgram(*program)
	if err != nil {
		return err
	}
	f, err := os.Open(*paramsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	params, err := core.ParseTransientParams(f)
	if err != nil {
		return err
	}
	r := nvbitfi.Runner{NoXlate: *noXlate || !*xlate}
	golden, err := r.Golden(w)
	if err != nil {
		return err
	}
	var res *nvbitfi.RunResult
	if *model != "" && *model != "transient" {
		m, err := nvbitfi.LookupFaultModel(*model)
		if err != nil {
			return err
		}
		// Model injectors resolve their site against the static kernel view
		// and (opsub) weight substitutes by opcode activity, so a one-off
		// inject profiles the workload the way a campaign would.
		profile, _, err := r.Profile(w, core.Exact)
		if err != nil {
			return err
		}
		res, err = r.RunModel(context.Background(), w, golden, m, *params, *modelParam,
			nvbitfi.NewModelEnv(r, golden, profile))
		if err != nil {
			return err
		}
	} else {
		if *modelParam != "" {
			return fmt.Errorf("inject: -model-param requires a non-default -model")
		}
		res, err = r.RunTransient(context.Background(), w, golden, *params)
		if err != nil {
			return err
		}
	}
	rec := res.Injection
	fmt.Printf("injection: activated=%v kernel=%s instr=%d opcode=%v lane=%d target=%s 0x%08x->0x%08x\n",
		rec.Activated, rec.Kernel, rec.InstrIdx, rec.Opcode, rec.Lane, rec.Target, rec.Before, rec.After)
	if res.Activations > 0 {
		fmt.Printf("activations: %d\n", res.Activations)
	}
	fmt.Printf("outcome: %v\n", res.Class)
	return nil
}

func cmdPFInject(args []string) error {
	fs := flag.NewFlagSet("pf-inject", flag.ExitOnError)
	program := fs.String("program", "", "target program name")
	sm := fs.Int("sm", 0, "SM id")
	lane := fs.Int("lane", 0, "lane id 0..31")
	mask := fs.String("mask", "0x1", "XOR bit mask")
	opcode := fs.Int("opcode", 0, "opcode id in the Volta opcode set")
	paramsPath := fs.String("params", "", "Table III parameter file (overrides the flags)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := lookupProgram(*program)
	if err != nil {
		return err
	}
	var p nvbitfi.PermanentParams
	if *paramsPath != "" {
		f, err := os.Open(*paramsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		pp, err := core.ParsePermanentParams(f)
		if err != nil {
			return err
		}
		p = *pp
	} else {
		m, err := strconv.ParseUint(*mask, 0, 32)
		if err != nil {
			return fmt.Errorf("bad mask: %v", err)
		}
		p = nvbitfi.PermanentParams{SMID: *sm, Lane: *lane, BitMask: uint32(m), OpcodeID: *opcode}
	}
	r := nvbitfi.Runner{}
	golden, err := r.Golden(w)
	if err != nil {
		return err
	}
	res, err := r.RunPermanent(context.Background(), w, golden, p, nil, nil)
	if err != nil {
		return err
	}
	fmt.Printf("permanent fault: opcode %v on SM %d lane %d mask 0x%x, %d activations\n",
		p.Opcode(nvbitfi.Volta), p.SMID, p.Lane, p.BitMask, res.Activations)
	fmt.Printf("outcome: %v\n", res.Class)
	return nil
}

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	program := fs.String("program", "", "target program name (or 'all')")
	n := fs.Int("n", 100, "number of transient injections")
	mode := fs.String("mode", "exact", "profiling mode: exact or approx")
	group := fs.String("group", "", "instruction group (default: the fault model's group, G_GPPR for transient)")
	bitflip := fs.Int("bitflip", 1, "bit-flip model 1..4")
	seed := fs.Int64("seed", 1, "campaign seed")
	shardSize := fs.Int("shard-size", 0, "experiments per selection shard (0 = default; part of the campaign's identity, matches 'submit -shard-size')")
	model := fs.String("model", "", "fault model (default transient; see 'nvbitfi models')")
	modelParam := fs.String("model-param", "", "fault-model parameter string, e.g. value=0,bit=17")
	permanent := fs.Bool("permanent", false, "run a permanent campaign instead")
	parallel := fs.Int("parallel", 0, "concurrent injection experiments (0 = one per CPU)")
	workers := fs.Int("workers", 0, "per-device block-parallel workers for uninstrumented launches (0 or 1 = sequential)")
	timing := fs.Bool("timing", false, "timing-fidelity mode: run experiments sequentially so durations are meaningful")
	prune := fs.Bool("prune", false, "statically prune transient injections with provably dead destinations (tallied as Masked without running)")
	classes := fs.Bool("classes", false, "class-representative sampling: run one experiment per fault-equivalence class per shard; members inherit the representative's classification")
	targetCI := fs.Float64("target-ci", 0, "adaptive sampling: stop at the first shard boundary where the stratified SDC-share interval half-width is at most this (0 = fixed-count campaign)")
	confidence := fs.Float64("confidence", 0.95, "confidence level for -target-ci")
	maxN := fs.Int("max-n", 0, "with -target-ci, the selection budget cap (0 = -n)")
	ckpt := fs.Bool("ckpt", false, "checkpoint-and-fork: record the golden trajectory once and start each experiment from the snapshot nearest its injection point")
	ckptStride := fs.Uint64("ckpt-stride", 0, "checkpoint stride in warp instructions (0 = derive from the golden run length)")
	noEarlyExit := fs.Bool("no-early-exit", false, "with -ckpt, disable early-exit classification at checkpoint boundaries")
	xlate := fs.Bool("xlate", true, "run launches on the block-level translation engine")
	noXlate := fs.Bool("no-xlate", false, "force the legacy interpreter (same as -xlate=false)")
	verify := fs.Bool("verify", false, "verify modules at load and reject programs with static errors")
	csvPath := fs.String("csv", "", "write the outcome distribution as CSV to this file")
	runlogPath := fs.String("runlog", "", "write one line per injection run to this file")
	jsonOut := fs.Bool("json", false, "print one stable JSON summary line per program to stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	// An unset group stays zero so the config layer can default it to the
	// fault model's own group (G_GPPR for the transient default).
	var g sass.Group
	if *group != "" {
		if g, err = sass.ParseGroup(*group); err != nil {
			return err
		}
	}
	var programs []nvbitfi.Workload
	if *program == "all" {
		programs = nvbitfi.SpecACCEL()
	} else {
		w, err := lookupProgram(*program)
		if err != nil {
			return err
		}
		programs = []nvbitfi.Workload{w}
	}
	if *prune && *permanent {
		return fmt.Errorf("campaign: -prune applies to transient campaigns only")
	}
	if *classes && *permanent {
		return fmt.Errorf("campaign: -classes applies to transient campaigns only")
	}
	if *ckpt && *permanent {
		return fmt.Errorf("campaign: -ckpt applies to transient campaigns only")
	}
	if *targetCI > 0 && *permanent {
		return fmt.Errorf("campaign: -target-ci applies to transient campaigns only")
	}
	if *model != "" && *permanent {
		return fmt.Errorf("campaign: -model selects a fault model for transient-style campaigns; use the 'stuck' model instead of -permanent, or drop -model")
	}
	if *modelParam != "" && (*model == "" || *model == "transient") {
		return fmt.Errorf("campaign: -model-param requires a non-default -model")
	}
	if (*ckptStride != 0 || *noEarlyExit) && !*ckpt {
		return fmt.Errorf("campaign: -ckpt-stride and -no-early-exit require -ckpt")
	}
	interp := *noXlate || !*xlate
	r := nvbitfi.Runner{Workers: *workers, VerifyModules: *verify, NoXlate: interp}
	var results []*nvbitfi.CampaignResult
	for _, w := range programs {
		golden, err := r.Golden(w)
		if err != nil {
			return err
		}
		profile, _, err := r.Profile(w, m)
		if err != nil {
			return err
		}
		var res *nvbitfi.CampaignResult
		if *permanent {
			p := *parallel
			if *timing {
				p = 1
			}
			res, err = nvbitfi.RunPermanentCampaign(context.Background(), r, w, golden, profile,
				nvbitfi.BitFlipModel(*bitflip), *seed, p)
		} else {
			cfg := nvbitfi.TransientCampaignConfig{
				Injections: *n, Group: g, BitFlip: nvbitfi.BitFlipModel(*bitflip), Seed: *seed,
				ShardSize: *shardSize,
				Parallel:  *parallel, TimingFidelity: *timing, Prune: *prune, Classes: *classes,
				Checkpoint: *ckpt, CkptStride: *ckptStride, NoEarlyExit: *noEarlyExit,
				NoXlate: interp,
			}
			// Set the adaptive knobs only when requested so a fixed-count
			// config encodes byte-identically to prior releases.
			if *targetCI > 0 {
				cfg.TargetCI = *targetCI
				cfg.Confidence = *confidence
				cfg.MaxInjections = *maxN
			}
			// Likewise the model fields: -model=transient means the default
			// and encodes to the prior bytes.
			if *model != "" && *model != "transient" {
				cfg.Model = *model
				cfg.ModelParam = *modelParam
			}
			res, err = nvbitfi.RunTransientCampaign(context.Background(), r, w, golden, profile, cfg)
		}
		if err != nil {
			if res != nil {
				// Degraded campaign: print what completed, then fail.
				fmt.Println(report.Summary(res))
			}
			return err
		}
		results = append(results, res)
		fmt.Println(report.Summary(res))
	}
	if *jsonOut {
		if err := report.WriteSummaryJSON(os.Stdout, results...); err != nil {
			return err
		}
	}
	st := modcache.Shared.Stats()
	fmt.Printf("module cache: assemble %d hits / %d builds, decode %d hits / %d builds, codec %d hits / %d builds, plan %d hits / %d builds\n",
		st.AssembleHits, st.AssembleBuilds, st.DecodeHits, st.DecodeBuilds, st.CodecHits, st.CodecBuilds, st.PlanHits, st.PlanBuilds)
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if *permanent {
			err = report.WriteWeightedCSV(f, results...)
		} else {
			err = report.WriteOutcomeCSV(f, results...)
		}
		if err != nil {
			return err
		}
	}
	if *runlogPath != "" {
		f, err := os.Create(*runlogPath)
		if err != nil {
			return err
		}
		defer f.Close()
		for _, res := range results {
			if err := report.WriteRunLog(f, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// cmdProfDiff compares two profiles — the exact-versus-approximate
// analysis of the paper's Section IV-B.
func cmdProfDiff(args []string) error {
	fs := flag.NewFlagSet("profdiff", flag.ExitOnError)
	aPath := fs.String("a", "", "first profile file")
	bPath := fs.String("b", "", "second profile file")
	group := fs.String("group", "G_GPPR", "instruction group to compare")
	minRel := fs.Float64("min", 0.01, "report kernels deviating at least this fraction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := sass.ParseGroup(*group)
	if err != nil {
		return err
	}
	load := func(path string) (*core.Profile, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return core.ParseProfile(f)
	}
	a, err := load(*aPath)
	if err != nil {
		return err
	}
	b, err := load(*bPath)
	if err != nil {
		return err
	}
	d := core.DiffProfiles(a, b, g)
	return d.WriteReport(os.Stdout, *minRel)
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	table1 := fs.Bool("table1", false, "print the tool-capability comparison (Table I)")
	table4 := fs.Bool("table4", false, "print the benchmark suite (Table IV)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *table1:
		return reportTable1()
	case *table4:
		return reportTable4()
	default:
		return fmt.Errorf("report: pass -table1 or -table4")
	}
}

func reportTable1() error {
	params := core.TransientParams{
		Group: nvbitfi.GroupGP, BitFlip: nvbitfi.FlipSingleBit,
		KernelName: "conv1d", KernelCount: 2, InstrCount: 500,
		DestRegSelect: 0.3, BitPatternValue: 0.4,
	}
	newCtx := func() (*nvbitfi.Context, error) {
		dev, err := nvbitfi.NewDevice(nvbitfi.Volta, 8)
		if err != nil {
			return nil, err
		}
		ctx, err := nvbitfi.NewContext(dev)
		if err != nil {
			return nil, err
		}
		ctx.SetDefaultBudget(1 << 30)
		return ctx, nil
	}
	pipeline := nvbitfi.NewAVPipeline(nvbitfi.AVConfig{Frames: 4})

	fmt.Printf("%-22s %-16s %-14s %-18s %s\n", "Tool", "Mechanism", "Needs source?", "Injected library?", "Notes")
	// NVBitFI.
	ctx, err := newCtx()
	if err != nil {
		return err
	}
	inj, err := nvbitfi.NewTransientInjector(params)
	if err != nil {
		return err
	}
	att, err := nvbit.Attach(ctx, inj)
	if err != nil {
		return err
	}
	if _, err := pipeline.Run(ctx); err != nil {
		return err
	}
	att.Detach()
	fmt.Printf("%-22s %-16s %-14s %-18v %s\n", "NVBitFI (this work)", "dynamic binary", "No",
		inj.Record().Activated, "selective per dynamic kernel")
	// StaticFI.
	ctx, err = newCtx()
	if err != nil {
		return err
	}
	s, err := baseline.AttachStaticFI(ctx, params)
	if err != nil {
		return err
	}
	if _, err := pipeline.Run(ctx); err != nil {
		return err
	}
	s.Detach()
	fmt.Printf("%-22s %-16s %-14s %-18v %s\n", "StaticFI (SASSIFI)", "compile-time", "Yes",
		s.Record().Activated, strings.Join(s.Failures(), "; "))
	// DebuggerFI.
	ctx, err = newCtx()
	if err != nil {
		return err
	}
	d, err := baseline.AttachDebuggerFI(ctx, params)
	if err != nil {
		return err
	}
	out, err := pipeline.Run(ctx)
	if err != nil {
		return err
	}
	d.Detach()
	fmt.Printf("%-22s %-16s %-14s %-18v %s\n", "DebuggerFI (GPU-Qin)", "debugger", "No",
		d.Record().Activated, fmt.Sprintf("%d single steps; exit %d", d.Steps(), out.ExitCode))
	return nil
}

func reportTable4() error {
	fmt.Printf("%-14s %-46s %8s %9s\n", "Program", "Description", "Static", "Dynamic")
	r := nvbitfi.Runner{}
	for _, w := range nvbitfi.SpecACCEL() {
		profile, _, err := r.Profile(w, nvbitfi.Approximate)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %-46s %8d %9d\n", w.Name(), w.Description(),
			len(profile.StaticKernels()), profile.DynamicKernels())
	}
	return nil
}

func cmdList() error {
	fmt.Println("available programs:")
	for _, info := range nvbitfi.SpecACCELInfos() {
		fmt.Printf("  %-14s %s\n", info.Name, info.Description)
	}
	fmt.Printf("  %-14s %s\n", "av.pipeline", "Real-time AV perception pipeline (binary-only vendor detector)")
	return nil
}
