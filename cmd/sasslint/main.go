// Command sasslint runs the static SASS verifier (internal/sassan) over
// assembly files or over every workload the repository ships. It is the
// CI gate that keeps the embedded kernels free of dead writes, unreachable
// code, and malformed control flow, and it exposes the injection-site
// equivalence-class analysis behind campaign class sampling.
//
// Usage:
//
//	sasslint file.sass [file2.sass ...]   lint assembly files (errors fail; -strict fails on warnings too)
//	sasslint -workloads                   lint every embedded workload (any diagnostic fails)
//	sasslint -classes [...]               additionally dump each kernel's fault-equivalence class table
//	sasslint -json [...]                  machine-readable output: one JSON object per line
//
// Exit codes (stable contract; scripts may rely on them):
//
//	0  everything assembled and linted clean
//	1  at least one finding failed the run: an assemble error, a verifier
//	   error, a warning under -strict or -workloads, or an unreadable input
//	2  usage error (bad flags, no inputs)
//
// With -json, every finding is one JSON object on its own line with schema
// "nvbitfi.sasslint/v1" and fixed fields {schema, source, kernel, instr,
// severity, code, msg}; instr is -1 for findings not tied to an
// instruction (kernel-level diagnostics, assemble errors — code
// "assemble-error" — and run failures — code "run-error"). Class-table
// rows (-classes) use schema "nvbitfi.sasslint.class/v1" with fields
// {schema, source, kernel, id, kind, masked, candidates, unclassable, rep,
// sites, members, weight}; one object per class, plus one summary object
// per kernel with id "" carrying the candidate and unclassable counts.
// members is the class's static site count; weight (workload mode only) is
// the class's profile-weighted share of the workload's G_GPPR dynamic
// instructions — the stratum weight adaptive campaign sampling pools
// against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	nvbitfi "repro"
	"repro/internal/sass"
	"repro/internal/sassan"
)

func main() {
	workloads := flag.Bool("workloads", false, "lint every embedded workload instead of files")
	strict := flag.Bool("strict", false, "treat warnings as failures in file mode")
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding (schema nvbitfi.sasslint/v1)")
	classes := flag.Bool("classes", false, "dump each kernel's fault-equivalence class table")
	flag.Parse()

	emit := &emitter{json: *jsonOut}
	if *workloads {
		os.Exit(lintWorkloads(emit, *classes))
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(lintFiles(flag.Args(), *strict, emit, *classes))
}

// FindingSchema versions the JSON finding encoding.
const FindingSchema = "nvbitfi.sasslint/v1"

// ClassSchema versions the JSON class-table encoding.
const ClassSchema = "nvbitfi.sasslint.class/v1"

// finding is the stable JSON form of one diagnostic.
type finding struct {
	Schema   string `json:"schema"`
	Source   string `json:"source"`
	Kernel   string `json:"kernel,omitempty"`
	Instr    int    `json:"instr"`
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Msg      string `json:"msg"`
}

// classRow is the stable JSON form of one equivalence class (or, with an
// empty ID, one kernel's table summary).
type classRow struct {
	Schema      string `json:"schema"`
	Source      string `json:"source"`
	Kernel      string `json:"kernel"`
	ID          string `json:"id"`
	Kind        string `json:"kind,omitempty"`
	Masked      bool   `json:"masked,omitempty"`
	Candidates  int    `json:"candidates,omitempty"`
	Unclassable int    `json:"unclassable,omitempty"`
	Rep         int    `json:"rep,omitempty"`
	Sites       []int  `json:"sites,omitempty"`
	// Members is the class's static site count; Weight is its
	// profile-weighted share of the workload's G_GPPR dynamic instructions
	// (workload mode only — file mode has no profile to weight by).
	Members int     `json:"members,omitempty"`
	Weight  float64 `json:"weight,omitempty"`
}

// emitter renders findings as text lines or JSONL.
type emitter struct {
	json bool
	enc  *json.Encoder
}

func (e *emitter) encoder() *json.Encoder {
	if e.enc == nil {
		e.enc = json.NewEncoder(os.Stdout)
	}
	return e.enc
}

// diag reports one verifier diagnostic.
func (e *emitter) diag(source string, d sassan.Diagnostic) {
	if !e.json {
		fmt.Printf("%s: %s\n", source, d)
		return
	}
	_ = e.encoder().Encode(finding{
		Schema: FindingSchema, Source: source, Kernel: d.Kernel, Instr: d.Instr,
		Severity: d.Sev.String(), Code: d.Code.String(), Msg: d.Msg,
	})
}

// failure reports a non-diagnostic failure (unreadable file, assemble
// error, workload run error) under a synthetic code.
func (e *emitter) failure(source, code string, err error) {
	if !e.json {
		fmt.Fprintf(os.Stderr, "sasslint: %s: %v\n", source, err)
		return
	}
	_ = e.encoder().Encode(finding{
		Schema: FindingSchema, Source: source, Instr: -1,
		Severity: "error", Code: code, Msg: err.Error(),
	})
}

// siteWeights carries a workload profile reduced to per-static-site G_GPPR
// dynamic counts, the denominator being the workload-wide total. The ratio
// per class is the stratum weight adaptive campaign sampling converges
// against, so the lint output doubles as a campaign-planning table.
type siteWeights struct {
	byKernel map[string][]uint64
	total    uint64
}

// newSiteWeights folds a profile's per-site breakdown over dynamic launches.
func newSiteWeights(p *nvbitfi.Profile) *siteWeights {
	sw := &siteWeights{byKernel: make(map[string][]uint64)}
	for i := range p.Records {
		r := &p.Records[i]
		if !r.HasSites() {
			continue
		}
		counts := sw.byKernel[r.Kernel]
		if len(counts) < len(r.SiteCounts) {
			counts = append(counts, make([]uint64, len(r.SiteCounts)-len(counts))...)
		}
		for s, c := range r.SiteCounts {
			if !sass.GroupContains(sass.GroupGPPR, r.SiteOps[s]) {
				continue
			}
			counts[s] += c
			sw.total += c
		}
		sw.byKernel[r.Kernel] = counts
	}
	return sw
}

// classWeight returns the class's share of the workload's dynamic G_GPPR
// instructions, or 0 when no profile is available.
func (sw *siteWeights) classWeight(kernel string, sites []int) float64 {
	if sw == nil || sw.total == 0 {
		return 0
	}
	counts := sw.byKernel[kernel]
	var sum uint64
	for _, s := range sites {
		if s < len(counts) {
			sum += counts[s]
		}
	}
	return float64(sum) / float64(sw.total)
}

// classTable dumps one kernel's equivalence classes.
func (e *emitter) classTable(source string, t *sassan.ClassTable, sw *siteWeights) {
	if e.json {
		_ = e.encoder().Encode(classRow{
			Schema: ClassSchema, Source: source, Kernel: t.Kernel,
			Candidates: t.Candidates, Unclassable: len(t.Unclassable),
		})
		for _, c := range t.Classes {
			_ = e.encoder().Encode(classRow{
				Schema: ClassSchema, Source: source, Kernel: t.Kernel,
				ID: c.ID, Kind: c.Kind.String(), Masked: c.Masked,
				Rep: c.Rep(), Sites: c.Sites,
				Members: len(c.Sites), Weight: sw.classWeight(t.Kernel, c.Sites),
			})
		}
		return
	}
	sites := 0
	for _, c := range t.Classes {
		sites += len(c.Sites)
	}
	fmt.Printf("%s: kernel %s: %d candidate sites, %d classes covering %d, %d unclassable\n",
		source, t.Kernel, t.Candidates, len(t.Classes), sites, len(t.Unclassable))
	for _, c := range t.Classes {
		label := c.Kind.String()
		if c.Masked {
			label += "/masked"
		}
		line := fmt.Sprintf("  %s %-13s rep=#%d members=%d sites=%v", c.ID, label, c.Rep(), len(c.Sites), c.Sites)
		if w := sw.classWeight(t.Kernel, c.Sites); w > 0 {
			line += fmt.Sprintf(" weight=%.4f", w)
		}
		fmt.Println(line)
	}
}

// classKernel builds and dumps the class table of one verify-clean kernel.
func classKernel(e *emitter, source string, k *sass.Kernel, sw *siteWeights) {
	a := sassan.Analyze(k)
	if sassan.HasErrors(a.Verify()) {
		return // the classing contract only covers verify-clean kernels
	}
	e.classTable(source, a.BuildClassTable(), sw)
}

// lintFiles assembles and verifies each file; returns the process exit code.
func lintFiles(paths []string, strict bool, e *emitter, classes bool) int {
	fail := false
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			e.failure(path, "read-error", err)
			fail = true
			continue
		}
		prog, err := sass.Assemble(path, string(src))
		if err != nil {
			e.failure(path, "assemble-error", err)
			fail = true
			continue
		}
		diags := sassan.VerifyProgram(prog)
		for _, d := range diags {
			e.diag(path, d)
		}
		if sassan.HasErrors(diags) || (strict && len(diags) > 0) {
			fail = true
		}
		if classes {
			for _, k := range prog.Kernels {
				classKernel(e, path, k, nil)
			}
		}
	}
	if fail {
		return 1
	}
	return 0
}

// lintWorkloads runs every shipped workload under a verifying context and
// reports each diagnostic its modules produce. Shipped kernels must be
// completely clean: any diagnostic — warning or error — fails.
func lintWorkloads(e *emitter, classes bool) int {
	works := nvbitfi.SpecACCEL()
	works = append(works, nvbitfi.NewAVPipeline(nvbitfi.AVConfig{}))
	r := nvbitfi.Runner{}
	fail := false
	for _, w := range works {
		diags, err := r.LintWorkload(w)
		if err != nil {
			e.failure(w.Name(), "run-error", err)
			fail = true
		}
		for _, d := range diags {
			e.diag(w.Name(), d)
			fail = true
		}
		if classes {
			golden, err := r.Golden(w)
			if err != nil {
				e.failure(w.Name(), "run-error", err)
				fail = true
				continue
			}
			profile, _, err := r.Profile(w, nvbitfi.Exact)
			if err != nil {
				e.failure(w.Name(), "run-error", err)
				fail = true
				continue
			}
			sw := newSiteWeights(profile)
			names := make([]string, 0, len(golden.Kernels))
			for name := range golden.Kernels {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				classKernel(e, w.Name(), golden.Kernels[name], sw)
			}
		}
	}
	if fail {
		return 1
	}
	if !e.json {
		fmt.Println("all workloads lint clean")
	}
	return 0
}
