// Command sasslint runs the static SASS verifier (internal/sassan) over
// assembly files or over every workload the repository ships. It is the
// CI gate that keeps the embedded kernels free of dead writes, unreachable
// code, and malformed control flow.
//
// Usage:
//
//	sasslint file.sass [file2.sass ...]   lint assembly files (errors fail; -strict fails on warnings too)
//	sasslint -workloads                   lint every embedded workload (any diagnostic fails)
package main

import (
	"flag"
	"fmt"
	"os"

	nvbitfi "repro"
	"repro/internal/sass"
	"repro/internal/sassan"
)

func main() {
	workloads := flag.Bool("workloads", false, "lint every embedded workload instead of files")
	strict := flag.Bool("strict", false, "treat warnings as failures in file mode")
	flag.Parse()

	if *workloads {
		os.Exit(lintWorkloads())
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(lintFiles(flag.Args(), *strict))
}

// lintFiles assembles and verifies each file; returns the process exit code.
func lintFiles(paths []string, strict bool) int {
	fail := false
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sasslint:", err)
			fail = true
			continue
		}
		prog, err := sass.Assemble(path, string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sasslint:", err)
			fail = true
			continue
		}
		diags := sassan.VerifyProgram(prog)
		for _, d := range diags {
			fmt.Printf("%s: %s\n", path, d)
		}
		if sassan.HasErrors(diags) || (strict && len(diags) > 0) {
			fail = true
		}
	}
	if fail {
		return 1
	}
	return 0
}

// lintWorkloads runs every shipped workload under a verifying context and
// reports each diagnostic its modules produce. Shipped kernels must be
// completely clean: any diagnostic — warning or error — fails.
func lintWorkloads() int {
	works := nvbitfi.SpecACCEL()
	works = append(works, nvbitfi.NewAVPipeline(nvbitfi.AVConfig{}))
	r := nvbitfi.Runner{}
	fail := false
	for _, w := range works {
		diags, err := r.LintWorkload(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sasslint: %s: %v\n", w.Name(), err)
			fail = true
		}
		for _, d := range diags {
			fmt.Printf("%s: %s\n", w.Name(), d)
			fail = true
		}
	}
	if fail {
		return 1
	}
	fmt.Println("all workloads lint clean")
	return 0
}
